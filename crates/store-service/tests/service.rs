//! End-to-end tests of the daemon: single-flight leases, eviction, and
//! client robustness against a slow or dying server — each over a real
//! TCP connection on loopback.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use eole_store_service::{
    ClientConfig, GetOutcome, ServerConfig, ServerHandle, StoreClient, StoreError, StoreServer,
};

fn spawn_server(config: ServerConfig) -> ServerHandle {
    StoreServer::bind("127.0.0.1:0", config).expect("bind loopback").spawn()
}

fn client(handle: &ServerHandle) -> StoreClient {
    StoreClient::connect(ClientConfig::new(handle.addr().to_string())).expect("connect")
}

#[test]
fn cold_key_leases_then_put_then_hit() {
    let dir = tempdir("lease-roundtrip");
    let server = spawn_server(ServerConfig::new(&dir));
    let a = client(&server);
    assert_eq!(a.get("k1", 0).unwrap(), GetOutcome::Lease, "cold key grants the lease");
    a.put("k1", b"payload-1".to_vec()).unwrap();
    assert_eq!(a.get("k1", 0).unwrap(), GetOutcome::Hit(b"payload-1".to_vec()));
    // The entry is a plain file in DirStore layout.
    assert_eq!(std::fs::read(std::path::Path::new(&dir).join("k1.json")).unwrap(), b"payload-1");
    let stats = server.stats();
    assert_eq!(stats.leases_granted, 1);
    assert_eq!(stats.puts, 1);
    assert_eq!(stats.hits, 1);
    server.shutdown();
}

#[test]
fn concurrent_requesters_single_flight_one_simulation() {
    let dir = tempdir("single-flight");
    let server = spawn_server(ServerConfig::new(&dir));
    let leader = client(&server);
    assert_eq!(leader.get("hot", 0).unwrap(), GetOutcome::Lease);

    // Four more sessions race on the same cold key; every one must park
    // on the leader's lease and wake with the published payload — zero
    // extra leases, which is the "exactly one simulation" guarantee.
    let woken = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                let waiter = client(&server);
                match waiter.get("hot", 10_000).unwrap() {
                    GetOutcome::Hit(p) => {
                        assert_eq!(p, b"simulated-once");
                        woken.fetch_add(1, Ordering::Relaxed);
                    }
                    other => panic!("waiter must get the published payload, got {other:?}"),
                }
            });
        }
        // Give the waiters time to park before publishing.
        std::thread::sleep(Duration::from_millis(150));
        leader.put("hot", b"simulated-once".to_vec()).unwrap();
    });
    assert_eq!(woken.load(Ordering::Relaxed), 4);
    let stats = server.stats();
    assert_eq!(stats.leases_granted, 1, "one lease, ever, for the racing key");
    assert!(stats.lease_waits >= 1, "waiters must have parked");
    server.shutdown();
}

#[test]
fn abandon_passes_the_lease_to_the_next_requester() {
    let dir = tempdir("abandon");
    let server = spawn_server(ServerConfig::new(&dir));
    let a = client(&server);
    let b = client(&server);
    assert_eq!(a.get("k", 0).unwrap(), GetOutcome::Lease);
    assert!(matches!(b.get("k", 0).unwrap(), GetOutcome::Busy { .. }));
    a.abandon("k").unwrap();
    assert_eq!(b.get("k", 0).unwrap(), GetOutcome::Lease, "abandon frees the key");
    server.shutdown();
}

#[test]
fn dropping_the_connection_releases_the_lease() {
    let dir = tempdir("conn-drop");
    let server = spawn_server(ServerConfig::new(&dir));
    let a = client(&server);
    assert_eq!(a.get("k", 0).unwrap(), GetOutcome::Lease);
    drop(a); // a killed client must never wedge the key
    let b = client(&server);
    let start = Instant::now();
    loop {
        match b.get("k", 1000).unwrap() {
            GetOutcome::Lease => break,
            GetOutcome::Busy { retry_ms } => {
                assert!(
                    start.elapsed() < Duration::from_secs(10),
                    "lease must be released by the disconnect, not the TTL"
                );
                std::thread::sleep(Duration::from_millis(u64::from(retry_ms)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    server.shutdown();
}

#[test]
fn re_requesting_a_held_lease_does_not_self_deadlock() {
    let dir = tempdir("re-grant");
    let server = spawn_server(ServerConfig::new(&dir));
    let a = client(&server);
    assert_eq!(a.get("k", 0).unwrap(), GetOutcome::Lease);
    // The same connection asking again (e.g. an executor retry) must be
    // re-granted immediately, not parked behind its own lease.
    assert_eq!(a.get("k", 5000).unwrap(), GetOutcome::Lease);
    server.shutdown();
}

#[test]
fn expired_lease_is_reclaimed_and_counted() {
    // TTL backstop: a lease holder that neither publishes nor disconnects
    // (wedged, not dead) must not block the key forever. After the TTL
    // the next requester is re-granted, the expiry is counted, and the
    // late publish from the original holder still lands (Put works with
    // or without a lease), so nothing is lost either way.
    let dir = tempdir("lease-expiry");
    let mut config = ServerConfig::new(&dir);
    config.lease_ttl = Duration::from_millis(200);
    let server = spawn_server(config);
    let wedged = client(&server);
    assert_eq!(wedged.get("k", 0).unwrap(), GetOutcome::Lease);
    // `wedged` stays connected but never publishes.
    let b = client(&server);
    let start = Instant::now();
    loop {
        match b.get("k", 0).unwrap() {
            GetOutcome::Lease => break,
            GetOutcome::Busy { retry_ms } => {
                assert!(start.elapsed() < Duration::from_secs(10), "TTL must reclaim the lease");
                std::thread::sleep(Duration::from_millis(u64::from(retry_ms.clamp(10, 100))));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    assert!(start.elapsed() >= Duration::from_millis(150), "re-grant happens after the TTL");
    let stats = server.stats();
    assert_eq!(stats.leases_expired, 1, "the reclaim is observable");
    assert_eq!(stats.leases_granted, 2, "exactly one re-grant — no duplicate fan-out");
    // The re-granted client simulates (once) and publishes.
    b.put("k", b"from-the-regrant".to_vec()).unwrap();
    assert_eq!(b.get("k", 0).unwrap(), GetOutcome::Hit(b"from-the-regrant".to_vec()));
    // The original holder's late publish is accepted, not an error (the
    // deterministic simulator would produce identical bytes anyway).
    wedged.put("k", b"from-the-regrant".to_vec()).unwrap();
    assert_eq!(server.stats().leases_granted, 2, "no further leases were needed");
    server.shutdown();
}

#[test]
fn eviction_is_lru_and_observable() {
    let dir = tempdir("evict-lru");
    let mut config = ServerConfig::new(&dir);
    config.max_entries = Some(2);
    let server = spawn_server(config);
    let c = client(&server);
    for key in ["a", "b"] {
        assert_eq!(c.get(key, 0).unwrap(), GetOutcome::Lease);
        c.put(key, format!("payload-{key}").into_bytes()).unwrap();
    }
    // Touch `a` so `b` is the least-recently-used entry.
    assert!(matches!(c.get("a", 0).unwrap(), GetOutcome::Hit(_)));
    assert_eq!(c.get("c", 0).unwrap(), GetOutcome::Lease);
    c.put("c", b"payload-c".to_vec()).unwrap();
    assert!(matches!(c.get("a", 0).unwrap(), GetOutcome::Hit(_)), "recently used survives");
    assert!(matches!(c.get("c", 0).unwrap(), GetOutcome::Hit(_)), "fresh publish survives");
    assert_eq!(server.stats().evictions, 1);
    assert_eq!(server.stats().entries, 2);
    // `b` was evicted: a re-get is a fresh lease.
    assert_eq!(c.get("b", 0).unwrap(), GetOutcome::Lease);
    server.shutdown();
}

#[test]
fn byte_budget_refuses_oversized_payloads_with_evicted() {
    let dir = tempdir("evict-budget");
    let mut config = ServerConfig::new(&dir);
    config.max_bytes = Some(16);
    let server = spawn_server(config);
    let c = client(&server);
    assert_eq!(c.get("big", 0).unwrap(), GetOutcome::Lease);
    let err = c.put("big", vec![0u8; 64]).unwrap_err();
    assert_eq!(err, StoreError::Evicted, "a payload over the whole budget is refused");
    // The refusal released the lease (waking any waiters).
    let b = client(&server);
    assert_eq!(b.get("big", 0).unwrap(), GetOutcome::Lease);
    server.shutdown();
}

#[test]
fn daemon_restart_serves_the_directory_it_left() {
    let dir = tempdir("restart");
    let server = spawn_server(ServerConfig::new(&dir));
    let c = client(&server);
    assert_eq!(c.get("persist", 0).unwrap(), GetOutcome::Lease);
    c.put("persist", b"survives".to_vec()).unwrap();
    server.shutdown();
    // A fresh daemon over the same directory seeds its index from disk.
    let server = spawn_server(ServerConfig::new(&dir));
    let c = client(&server);
    assert_eq!(c.get("persist", 0).unwrap(), GetOutcome::Hit(b"survives".to_vec()));
    server.shutdown();
}

#[test]
fn slow_server_times_out_then_client_retries_fresh_connections() {
    // A fake daemon that completes the handshake and then goes silent:
    // the client must time out, reconnect, retry, and finally surface a
    // typed Timeout — never hang, never panic.
    use eole_store_service::proto::{
        decode_request, encode_response, read_frame, write_frame, Request, Response, PROTO_VERSION,
    };
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let accepted = std::sync::Arc::new(AtomicUsize::new(0));
    let fake = {
        let accepted = std::sync::Arc::clone(&accepted);
        std::thread::spawn(move || {
            let mut parked = Vec::new();
            for conn in listener.incoming() {
                let Ok(mut conn) = conn else { break };
                accepted.fetch_add(1, Ordering::Relaxed);
                // Handshake honestly…
                let Ok(frame) = read_frame(&mut conn) else { continue };
                let Ok(Request::Ping { .. }) = decode_request(&frame) else { continue };
                let pong = Response::Pong { proto: PROTO_VERSION.to_string() };
                if write_frame(&mut conn, &encode_response(&pong)).is_err() {
                    continue;
                }
                // …then swallow the next request and say nothing. Park
                // the socket (still open) so the client's read deadline —
                // not an EOF from a dropped connection — is what fires.
                let _ = read_frame(&mut conn);
                parked.push(conn);
            }
        })
    };
    let mut config = ClientConfig::new(addr.to_string());
    config.io_timeout = Duration::from_millis(200);
    config.backoff = Duration::from_millis(10);
    config.retries = 2;
    let client = StoreClient::connect(config).expect("handshake succeeds");
    let start = Instant::now();
    let err = client.get("k", 0).unwrap_err();
    assert!(matches!(err, StoreError::Timeout(_)), "typed timeout, got {err:?}");
    assert!(start.elapsed() < Duration::from_secs(5), "bounded, not hanging");
    assert!(
        accepted.load(Ordering::Relaxed) >= 3,
        "each retry must re-dial (connect + 2 retries), saw {}",
        accepted.load(Ordering::Relaxed)
    );
    drop(client);
    drop(fake); // detached; the listener dies with the process
}

#[test]
fn version_mismatch_is_a_protocol_error_not_a_retry_storm() {
    use eole_store_service::proto::{
        decode_request, encode_response, read_frame, write_frame, Request, Response,
    };
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        for conn in listener.incoming() {
            let Ok(mut conn) = conn else { break };
            let Ok(frame) = read_frame(&mut conn) else { continue };
            let Ok(Request::Ping { .. }) = decode_request(&frame) else { continue };
            let pong = Response::Pong { proto: "eole-store/v0".to_string() };
            let _ = write_frame(&mut conn, &encode_response(&pong));
        }
    });
    let err = StoreClient::connect(ClientConfig::new(addr.to_string())).unwrap_err();
    assert!(matches!(err, StoreError::Protocol(_)), "got {err:?}");
}

/// A fresh directory under the target-dir scratch space (no tempfile
/// crate in the tree; pid + test name keeps concurrent runs apart).
fn tempdir(tag: &str) -> String {
    let dir = std::env::temp_dir()
        .join(format!("eole-store-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir.to_string_lossy().into_owned()
}
