//! Wire-level chaos: seeded fault injection against a real daemon over
//! loopback TCP. Every injected transport fault must surface as a typed
//! [`StoreError`] (or be absorbed by the client's bounded retry) — never
//! a panic, a hang, or a silently wrong payload.
//!
//! The fault injector is process-global, so every test serializes
//! through [`faults::install_guarded`] (RAII: uninstalls on drop).

use std::time::Duration;

use eole_store_service::faults::{self, FaultPlan};
use eole_store_service::{
    ClientConfig, GetOutcome, ServerConfig, ServerHandle, StoreClient, StoreError, StoreServer,
};

fn spawn_server(config: ServerConfig) -> ServerHandle {
    StoreServer::bind("127.0.0.1:0", config).expect("bind loopback").spawn()
}

fn fast_client(handle: &ServerHandle) -> StoreClient {
    // Short backoff so retry-path tests stay quick.
    let mut config = ClientConfig::new(handle.addr().to_string());
    config.backoff = Duration::from_millis(10);
    StoreClient::connect(config).expect("connect")
}

fn tempdir(tag: &str) -> String {
    let dir = std::env::temp_dir().join(format!("eole-chaos-wire-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir.to_string_lossy().into_owned()
}

/// Polls `get` until the lease lands (bounded): the previous faulted
/// exchange may have left a server-side lease whose disconnect-release
/// races the reconnect.
fn get_lease_eventually(client: &StoreClient, key: &str) {
    let start = std::time::Instant::now();
    loop {
        match client.get(key, 500).unwrap() {
            GetOutcome::Lease => return,
            GetOutcome::Busy { retry_ms } => {
                assert!(start.elapsed() < Duration::from_secs(10), "lease never released");
                std::thread::sleep(Duration::from_millis(u64::from(retry_ms.clamp(10, 100))));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}

#[test]
fn garbled_response_is_a_typed_protocol_error_not_a_retry_storm() {
    let dir = tempdir("garble");
    let server = spawn_server(ServerConfig::new(&dir));
    // Connect BEFORE installing the plan: the handshake bypasses the
    // request path, but keeping it fault-free makes occurrence 0 below
    // unambiguous.
    let client = fast_client(&server);
    let _guard = faults::install_guarded(FaultPlan::parse("client.recv.corrupt@0,seed=1").unwrap());
    // The very first request's response frame is garbled in flight: the
    // decoder must reject it typed, and the client must NOT retry (a
    // corrupted stream is not a transient transport failure).
    let err = client.get("k", 0).unwrap_err();
    assert!(matches!(err, StoreError::Protocol(_)), "got {err:?}");
    // The connection was dropped after the protocol error; the next
    // request re-dials and works (occurrence 1 does not fire).
    get_lease_eventually(&client, "k");
    server.shutdown();
}

#[test]
fn truncated_response_is_a_typed_protocol_error() {
    let dir = tempdir("truncate");
    let server = spawn_server(ServerConfig::new(&dir));
    let client = fast_client(&server);
    let _guard =
        faults::install_guarded(FaultPlan::parse("client.recv.truncate@0,seed=1").unwrap());
    let err = client.get("k", 0).unwrap_err();
    assert!(matches!(err, StoreError::Protocol(_)), "got {err:?}");
    get_lease_eventually(&client, "k"); // recovers on the next request
    server.shutdown();
}

#[test]
fn injected_send_failure_is_absorbed_by_reconnect_and_retry() {
    let dir = tempdir("send-io");
    let server = spawn_server(ServerConfig::new(&dir));
    let client = fast_client(&server);
    let _guard = faults::install_guarded(FaultPlan::parse("client.send.io@0,seed=1").unwrap());
    // Attempt 0 fails with an injected Io error; the client reconnects
    // and attempt 1 (occurrence 1 — no match) succeeds. The caller never
    // sees the fault.
    assert_eq!(client.get("k", 0).unwrap(), GetOutcome::Lease);
    client.put("k", b"survived".to_vec()).unwrap();
    assert_eq!(client.get("k", 0).unwrap(), GetOutcome::Hit(b"survived".to_vec()));
    server.shutdown();
}

#[test]
fn forced_lease_expiry_regrants_and_counts() {
    let dir = tempdir("lease-expire");
    let server = spawn_server(ServerConfig::new(&dir));
    let a = fast_client(&server);
    let b = fast_client(&server);
    assert_eq!(a.get("k", 0).unwrap(), GetOutcome::Lease);
    // Force the server to treat a's (healthy, hours-from-expiry) lease as
    // expired the moment b asks — the deterministic stand-in for a real
    // TTL expiry, without the wall-clock wait.
    let _guard = faults::install_guarded(FaultPlan::parse("server.lease.expire@0,seed=1").unwrap());
    assert_eq!(b.get("k", 0).unwrap(), GetOutcome::Lease, "the expired lease is re-granted");
    let stats = server.stats();
    assert_eq!(stats.leases_expired, 1);
    assert_eq!(stats.leases_granted, 2);
    // b (the new holder) publishes; a's late put is still accepted.
    b.put("k", b"payload".to_vec()).unwrap();
    a.put("k", b"payload".to_vec()).unwrap();
    assert_eq!(a.get("k", 0).unwrap(), GetOutcome::Hit(b"payload".to_vec()));
    server.shutdown();
}

#[test]
fn garbled_inbound_request_gets_a_typed_err_response_and_the_daemon_lives() {
    let dir = tempdir("server-garble");
    let server = spawn_server(ServerConfig::new(&dir));
    let client = fast_client(&server);
    // Garble the server's *inbound* view of the next request body: the
    // daemon must answer a typed Err (which the client surfaces as a
    // Protocol error) and keep serving other connections. A Stats
    // request is a single tag byte, so the garble always destroys the
    // tag — deterministic regardless of where the salt lands the flip.
    let _guard = faults::install_guarded(FaultPlan::parse("server.recv.corrupt@0,seed=2").unwrap());
    let err = client.stats().unwrap_err();
    assert!(matches!(err, StoreError::Protocol(_)), "got {err:?}");
    // The daemon is still healthy for a fresh connection.
    let fresh = fast_client(&server);
    assert_eq!(fresh.get("k", 0).unwrap(), GetOutcome::Lease);
    server.shutdown();
}

#[test]
fn injected_client_delay_only_slows_the_request() {
    let dir = tempdir("delay");
    let server = spawn_server(ServerConfig::new(&dir));
    let client = fast_client(&server);
    let _guard = faults::install_guarded(FaultPlan::parse("client.delay@0:80,seed=1").unwrap());
    let start = std::time::Instant::now();
    assert_eq!(client.get("k", 0).unwrap(), GetOutcome::Lease);
    assert!(start.elapsed() >= Duration::from_millis(80), "the delay was injected");
    let quick = std::time::Instant::now();
    client.put("k", b"p".to_vec()).unwrap();
    assert!(quick.elapsed() < Duration::from_millis(80), "only occurrence 0 is delayed");
    server.shutdown();
}
