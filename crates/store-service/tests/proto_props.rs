//! Property tests over the `eole-store/v2` wire codec: every encodable
//! message round-trips byte-exactly through encode → frame → unframe →
//! decode, every truncation is rejected as a typed error, and oversized
//! frames never allocate their claimed length.

use proptest::prelude::*;

use eole_store_service::proto::{
    decode_request, decode_response, encode_request, encode_response, read_frame, write_frame,
    Request, Response, ServiceStats, MAX_FRAME,
};
use eole_store_service::StoreError;

fn key_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(0u8..64, 1..64).prop_map(|draws| {
        const ALPHABET: &[u8] =
            b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-ab";
        draws.iter().map(|&d| ALPHABET[d as usize % 64] as char).collect()
    })
}

fn payload_strategy() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..=255, 0..2048)
}

fn request_strategy() -> impl Strategy<Value = Request> {
    (0u8..5, key_strategy(), payload_strategy(), 0u32..120_000).prop_map(
        |(tag, key, payload, wait_ms)| match tag {
            0 => Request::Ping { proto: String::from_utf8_lossy(&payload).into_owned() },
            1 => Request::Get { key, wait_ms },
            2 => Request::Put { key, payload },
            3 => Request::Abandon { key },
            _ => Request::Stats,
        },
    )
}

fn response_strategy() -> impl Strategy<Value = Response> {
    (0u8..7, payload_strategy(), 0u32..120_000, proptest::collection::vec(any::<u64>(), 9..10))
        .prop_map(|(tag, payload, n, stats)| match tag {
            0 => Response::Pong { proto: String::from_utf8_lossy(&payload).into_owned() },
            1 => Response::Hit { payload },
            2 => Response::Lease,
            3 => Response::Busy { retry_ms: n },
            4 => Response::Ok,
            5 => Response::Err {
                code: (n % 2) as u8,
                msg: String::from_utf8_lossy(&payload).into_owned(),
            },
            _ => Response::Stats(ServiceStats {
                entries: stats[0],
                bytes: stats[1],
                hits: stats[2],
                misses: stats[3],
                puts: stats[4],
                evictions: stats[5],
                leases_granted: stats[6],
                lease_waits: stats[7],
                leases_expired: stats[8],
            }),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn requests_round_trip_through_the_wire(req in request_strategy()) {
        let body = encode_request(&req);
        prop_assert_eq!(decode_request(&body).unwrap(), req.clone());
        // Through a real framed pipe too.
        let mut wire = Vec::new();
        write_frame(&mut wire, &body).unwrap();
        let unframed = read_frame(&mut wire.as_slice()).unwrap();
        prop_assert_eq!(decode_request(&unframed).unwrap(), req);
    }

    #[test]
    fn responses_round_trip_through_the_wire(resp in response_strategy()) {
        let body = encode_response(&resp);
        prop_assert_eq!(decode_response(&body).unwrap(), resp.clone());
        let mut wire = Vec::new();
        write_frame(&mut wire, &body).unwrap();
        let unframed = read_frame(&mut wire.as_slice()).unwrap();
        prop_assert_eq!(decode_response(&unframed).unwrap(), resp);
    }

    #[test]
    fn every_truncation_is_rejected_typed(req in request_strategy(), cut_seed: u16) {
        let body = encode_request(&req);
        // Cut the body anywhere strictly inside; the decoder must answer
        // a typed Protocol error — no panic, no partial value.
        prop_assume!(!body.is_empty());
        let cut = usize::from(cut_seed) % body.len();
        match decode_request(&body[..cut]) {
            Err(StoreError::Protocol(_)) => {}
            other => prop_assert!(false, "truncated decode must fail typed, got {:?}", other),
        }
        // Framed truncation (header promises more than the wire holds)
        // must fail at the frame layer, also typed.
        let mut wire = Vec::new();
        write_frame(&mut wire, &body).unwrap();
        let cut_wire = usize::from(cut_seed) % wire.len();
        prop_assert!(read_frame(&mut wire[..cut_wire].as_ref()).is_err());
    }

    #[test]
    fn trailing_garbage_is_rejected(req in request_strategy(), extra: u8) {
        let mut body = encode_request(&req);
        body.push(extra);
        match decode_request(&body) {
            Err(StoreError::Protocol(_)) => {}
            other => prop_assert!(false, "trailing bytes must fail typed, got {:?}", other),
        }
    }
}

#[test]
fn oversized_frame_header_is_rejected_without_allocating() {
    // A hostile 4 GiB length prefix: the reader must reject it from the
    // header alone (allocating it would be a memory DoS).
    let mut wire = Vec::new();
    wire.extend_from_slice(&(u32::MAX).to_be_bytes());
    wire.extend_from_slice(b"junk");
    match read_frame(&mut wire.as_slice()) {
        Err(StoreError::Protocol(msg)) => assert!(msg.contains("frame"), "{msg}"),
        other => panic!("oversized frame must be a protocol error, got {other:?}"),
    }
    // And the writer refuses to produce one.
    let body = vec![0u8; MAX_FRAME + 1];
    assert!(matches!(write_frame(&mut Vec::new(), &body), Err(StoreError::Protocol(_))));
}
