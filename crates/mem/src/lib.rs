//! # eole-mem
//!
//! The memory system of the paper's Table 1, built from scratch:
//!
//! * [`cache::Cache`] — set-associative, LRU, write-back, with per-line
//!   fill timing so in-flight fills delay dependent hits;
//! * [`mshr::MshrFile`] — bounded outstanding misses with merge and
//!   full-file delay semantics;
//! * [`prefetch::StridePrefetcher`] — per-pc stride prefetcher
//!   (degree 8, distance 1) in front of the L2;
//! * [`dram::Dram`] — open-row DDR3-style latency model
//!   (75/130/185-cycle row hit/closed/conflict, per-bank serialization);
//! * [`hierarchy::MemoryHierarchy`] — L1I + L1D + unified L2 + DRAM glue
//!   with write-back victims and demand/prefetch interleaving.
//!
//! ## Example
//!
//! ```
//! use eole_mem::hierarchy::{HierarchyConfig, MemoryHierarchy};
//!
//! let mut mem = MemoryHierarchy::new(&HierarchyConfig::paper());
//! let t1 = mem.load(0x400, 0x1000, 0); // cold miss: goes to DRAM
//! let t2 = mem.load(0x400, 0x1008, t1); // same line: L1 hit, +2 cycles
//! assert_eq!(t2, t1 + 2);
//! ```

#![forbid(unsafe_code)]

pub mod cache;
pub mod dram;
pub mod hierarchy;
pub mod mshr;
pub mod prefetch;
