//! Set-associative cache with LRU replacement and per-line fill timing.
//!
//! Timing model: a lookup either *hits* (data available after the cache's
//! access latency, or after the line's in-flight fill completes, whichever
//! is later) or *misses* (the caller fetches the line from the next level
//! and installs it with [`Cache::fill`], recording when the fill arrives).
//! Recording `ready_at` per line prevents a just-started fill from being
//! treated as an instant hit by a subsequent access.

/// Geometry and latency of one cache level.
#[derive(Clone, Debug)]
pub struct CacheConfig {
    /// Number of sets.
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Access latency in cycles (hit latency).
    pub latency: u64,
}

impl CacheConfig {
    /// Table 1: L1D 4-way 32 KB, 2 cycles, 64 B lines.
    pub fn l1d_paper() -> Self {
        CacheConfig { sets: 128, ways: 4, line_bytes: 64, latency: 2 }
    }

    /// Table 1: L1I 4-way 32 KB, 64 B lines (hit latency folded into the
    /// front-end depth; misses add stall cycles).
    pub fn l1i_paper() -> Self {
        CacheConfig { sets: 128, ways: 4, line_bytes: 64, latency: 1 }
    }

    /// Table 1: unified L2 16-way 2 MB, 12 cycles, 64 B lines.
    pub fn l2_paper() -> Self {
        CacheConfig { sets: 2048, ways: 16, line_bytes: 64, latency: 12 }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.sets as u64 * self.ways as u64 * self.line_bytes
    }
}

/// Result of a cache lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lookup {
    /// Line present: data available at `available` (≥ lookup cycle +
    /// latency; later if the line's fill is still in flight).
    Hit {
        /// Cycle at which the data can be consumed.
        available: u64,
    },
    /// Line absent: fetch from the next level, then call [`Cache::fill`].
    Miss,
}

/// A line evicted by [`Cache::fill`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Evicted {
    /// Base address of the evicted line.
    pub line_addr: u64,
    /// True if the line was dirty (needs a writeback).
    pub dirty: bool,
}

#[derive(Clone, Copy, Debug, Default)]
struct Line {
    valid: bool,
    tag: u64,
    dirty: bool,
    /// Cycle at which the (possibly in-flight) fill completes.
    ready_at: u64,
    /// Larger = more recently used.
    lru: u64,
}

/// Running hit/miss counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total lookups.
    pub accesses: u64,
    /// Lookups that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Miss ratio (0 when there were no accesses).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// One cache level.
#[derive(Clone, Debug)]
pub struct Cache {
    config: CacheConfig,
    lines: Vec<Line>,
    lru_clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if sets/ways are zero or `line_bytes` is not a power of two.
    // lint:allow(hot-alloc) cold construction path: tables allocated once, before the measured loop
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.sets > 0 && config.ways > 0);
        assert!(config.line_bytes.is_power_of_two());
        let n = config.sets * config.ways;
        Cache { config, lines: vec![Line::default(); n], lru_clock: 0, stats: CacheStats::default() }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Hit/miss counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Base address of the line containing `addr`.
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr & !(self.config.line_bytes - 1)
    }

    fn set_of(&self, addr: u64) -> usize {
        ((addr / self.config.line_bytes) as usize) % self.config.sets
    }

    fn tag_of(&self, addr: u64) -> u64 {
        addr / self.config.line_bytes / self.config.sets as u64
    }

    /// Looks up `addr` at `cycle`, updating LRU and counters.
    pub fn lookup(&mut self, addr: u64, cycle: u64) -> Lookup {
        self.stats.accesses += 1;
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let base = set * self.config.ways;
        for w in 0..self.config.ways {
            let idx = base + w;
            if self.lines[idx].valid && self.lines[idx].tag == tag {
                self.lru_clock += 1;
                self.lines[idx].lru = self.lru_clock;
                let fill_done = self.lines[idx].ready_at;
                let available = cycle.max(fill_done) + self.config.latency;
                return Lookup::Hit { available };
            }
        }
        self.stats.misses += 1;
        Lookup::Miss
    }

    /// Checks for presence without touching LRU or counters (used by
    /// prefetchers to avoid redundant fills).
    pub fn probe(&self, addr: u64) -> bool {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let base = set * self.config.ways;
        (0..self.config.ways).any(|w| {
            let l = &self.lines[base + w];
            l.valid && l.tag == tag
        })
    }

    /// Installs the line containing `addr`, whose fill completes at
    /// `ready_at`. Returns the evicted victim, if any.
    pub fn fill(&mut self, addr: u64, ready_at: u64) -> Option<Evicted> {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let base = set * self.config.ways;
        // Refill of a line that is already present just updates timing.
        for w in 0..self.config.ways {
            let l = &mut self.lines[base + w];
            if l.valid && l.tag == tag {
                l.ready_at = l.ready_at.max(ready_at);
                return None;
            }
        }
        let mut victim = base;
        let mut best = u64::MAX;
        for w in 0..self.config.ways {
            let l = &self.lines[base + w];
            if !l.valid {
                victim = base + w;
                break;
            }
            if l.lru < best {
                best = l.lru;
                victim = base + w;
            }
        }
        let old = self.lines[victim];
        self.lru_clock += 1;
        self.lines[victim] =
            Line { valid: true, tag, dirty: false, ready_at, lru: self.lru_clock };
        if old.valid {
            let line_bytes = self.config.line_bytes;
            let old_addr = (old.tag * self.config.sets as u64 + set as u64) * line_bytes;
            Some(Evicted { line_addr: old_addr, dirty: old.dirty })
        } else {
            None
        }
    }

    /// Marks the line containing `addr` dirty (store hit). Returns false if
    /// the line is absent.
    pub fn mark_dirty(&mut self, addr: u64) -> bool {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let base = set * self.config.ways;
        for w in 0..self.config.ways {
            let l = &mut self.lines[base + w];
            if l.valid && l.tag == tag {
                l.dirty = true;
                return true;
            }
        }
        false
    }
}

impl eole_predictors::snapshot::Snapshot for Cache {
    fn snapshot(&self, w: &mut eole_predictors::snapshot::SnapWriter) {
        w.put_usize(self.lines.len());
        for l in &self.lines {
            w.put_bool(l.valid);
            w.put_u64(l.tag);
            w.put_bool(l.dirty);
            w.put_u64(l.ready_at);
            w.put_u64(l.lru);
        }
        w.put_u64(self.lru_clock);
        w.put_u64(self.stats.accesses);
        w.put_u64(self.stats.misses);
    }

    fn restore(
        &mut self,
        r: &mut eole_predictors::snapshot::SnapReader<'_>,
    ) -> Result<(), eole_predictors::snapshot::SnapError> {
        if r.get_usize()? != self.lines.len() {
            return Err(eole_predictors::snapshot::SnapError::new("cache size mismatch"));
        }
        for l in &mut self.lines {
            l.valid = r.get_bool()?;
            l.tag = r.get_u64()?;
            l.dirty = r.get_bool()?;
            l.ready_at = r.get_u64()?;
            l.lru = r.get_u64()?;
        }
        self.lru_clock = r.get_u64()?;
        self.stats.accesses = r.get_u64()?;
        self.stats.misses = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        Cache::new(CacheConfig { sets: 2, ways: 2, line_bytes: 64, latency: 2 })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        assert_eq!(c.lookup(0x100, 10), Lookup::Miss);
        c.fill(0x100, 50);
        match c.lookup(0x104, 60) {
            Lookup::Hit { available } => assert_eq!(available, 62),
            Lookup::Miss => panic!("same line must hit"),
        }
        assert_eq!(c.stats().accesses, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn inflight_fill_delays_the_hit() {
        let mut c = small();
        c.fill(0x100, 100); // fill completes at cycle 100
        match c.lookup(0x100, 20) {
            Lookup::Hit { available } => assert_eq!(available, 102),
            Lookup::Miss => panic!("pending line must register as a hit"),
        }
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small(); // 2 ways per set
        // Three lines mapping to the same set (set count = 2).
        let (a, b, d) = (0x000, 0x080, 0x100); // set 0 lines
        c.fill(a, 0);
        c.fill(b, 0);
        let _ = c.lookup(a, 1); // a is MRU
        let ev = c.fill(d, 2).expect("must evict");
        assert_eq!(ev.line_addr, b);
        assert!(c.probe(a));
        assert!(!c.probe(b));
    }

    #[test]
    fn dirty_eviction_is_reported() {
        let mut c = small();
        c.fill(0x000, 0);
        assert!(c.mark_dirty(0x000));
        c.fill(0x080, 0);
        let ev = c.fill(0x100, 0).unwrap();
        assert_eq!(ev.line_addr, 0x000);
        assert!(ev.dirty);
    }

    #[test]
    fn mark_dirty_on_absent_line_fails() {
        let mut c = small();
        assert!(!c.mark_dirty(0x40));
    }

    #[test]
    fn paper_configs_have_table1_capacities() {
        assert_eq!(CacheConfig::l1d_paper().capacity(), 32 * 1024);
        assert_eq!(CacheConfig::l1i_paper().capacity(), 32 * 1024);
        assert_eq!(CacheConfig::l2_paper().capacity(), 2 * 1024 * 1024);
    }

    #[test]
    fn refill_of_present_line_updates_timing_without_eviction() {
        let mut c = small();
        c.fill(0x100, 10);
        assert!(c.fill(0x100, 99).is_none());
        match c.lookup(0x100, 0) {
            Lookup::Hit { available } => assert_eq!(available, 101),
            Lookup::Miss => panic!(),
        }
    }
}
