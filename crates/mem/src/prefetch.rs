//! Per-PC stride prefetcher (Table 1: L2 "Stride prefetcher, degree 8,
//! distance 1").
//!
//! Trained on demand accesses that reach L2; once a load pc exhibits a
//! stable non-zero stride, it emits `degree` prefetch addresses starting
//! `distance` strides ahead of the demand address. The hierarchy decides
//! which of those actually fill (skipping lines already present/pending).

use eole_predictors::history::hash_pc;

/// Prefetcher parameters.
#[derive(Clone, Debug)]
pub struct PrefetchConfig {
    /// Number of table entries.
    pub entries: usize,
    /// Prefetches issued per trigger.
    pub degree: usize,
    /// How many strides ahead the first prefetch lands.
    pub distance: u64,
}

impl PrefetchConfig {
    /// The paper's degree-8, distance-1 configuration.
    pub fn paper() -> Self {
        PrefetchConfig { entries: 256, degree: 8, distance: 1 }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Entry {
    valid: bool,
    tag: u64,
    last_addr: u64,
    stride: i64,
    /// 2-bit stride-stability confidence.
    conf: u8,
}

/// Prefetch counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct PrefetchStats {
    /// Training events observed.
    pub trains: u64,
    /// Prefetch addresses emitted.
    pub issued: u64,
}

/// The stride prefetcher.
#[derive(Clone, Debug)]
pub struct StridePrefetcher {
    config: PrefetchConfig,
    table: Vec<Entry>,
    stats: PrefetchStats,
}

impl StridePrefetcher {
    /// Creates an empty prefetcher.
    // lint:allow(hot-alloc) cold construction path: tables allocated once, before the measured loop
    pub fn new(config: PrefetchConfig) -> Self {
        let n = config.entries.next_power_of_two().max(1);
        StridePrefetcher { config, table: vec![Entry::default(); n], stats: PrefetchStats::default() }
    }

    /// Running counters.
    pub fn stats(&self) -> PrefetchStats {
        self.stats
    }

    fn index(&self, pc: u64) -> usize {
        (hash_pc(pc, 0x9f37) as usize) & (self.table.len() - 1)
    }

    /// Observes a demand access by the load at `pc` to `addr`; returns the
    /// prefetch addresses to issue (empty until the stride is stable).
    ///
    /// Convenience wrapper over [`StridePrefetcher::train_into`] for tests
    /// and offline tools; the hierarchy's hot path reuses a scratch buffer
    /// instead.
    // lint:allow(hot-alloc) offline/test convenience; the hierarchy's hot path uses `train_into`
    pub fn train(&mut self, pc: u64, addr: u64) -> Vec<u64> {
        let mut out = Vec::new();
        self.train_into(pc, addr, &mut out);
        out
    }

    /// Allocation-free [`StridePrefetcher::train`]: clears `out` and fills
    /// it with the prefetch addresses to issue (left empty until the
    /// stride is stable). `out` never grows past `config.degree`, so a
    /// reused buffer reaches its high-water mark on the first trigger.
    pub fn train_into(&mut self, pc: u64, addr: u64, out: &mut Vec<u64>) {
        out.clear();
        self.stats.trains += 1;
        let idx = self.index(pc);
        let e = &mut self.table[idx];
        if !(e.valid && e.tag == pc) {
            *e = Entry { valid: true, tag: pc, last_addr: addr, stride: 0, conf: 0 };
            return;
        }
        let new_stride = addr.wrapping_sub(e.last_addr) as i64;
        if new_stride == e.stride && new_stride != 0 {
            e.conf = (e.conf + 1).min(3);
        } else {
            e.conf = e.conf.saturating_sub(1);
            if e.conf == 0 {
                e.stride = new_stride;
            }
        }
        e.last_addr = addr;
        if e.conf >= 2 && e.stride != 0 {
            let stride = e.stride;
            for i in 0..self.config.degree as u64 {
                out.push(
                    addr.wrapping_add((stride.wrapping_mul((self.config.distance + i) as i64)) as u64),
                );
            }
            self.stats.issued += out.len() as u64;
        }
    }
}

impl eole_predictors::snapshot::Snapshot for StridePrefetcher {
    fn snapshot(&self, w: &mut eole_predictors::snapshot::SnapWriter) {
        w.put_usize(self.table.len());
        for e in &self.table {
            w.put_bool(e.valid);
            w.put_u64(e.tag);
            w.put_u64(e.last_addr);
            w.put_i64(e.stride);
            w.put_u8(e.conf);
        }
        w.put_u64(self.stats.trains);
        w.put_u64(self.stats.issued);
    }

    fn restore(
        &mut self,
        r: &mut eole_predictors::snapshot::SnapReader<'_>,
    ) -> Result<(), eole_predictors::snapshot::SnapError> {
        use eole_predictors::snapshot::SnapError;
        if r.get_usize()? != self.table.len() {
            return Err(SnapError::new("prefetch table size mismatch"));
        }
        for e in &mut self.table {
            e.valid = r.get_bool()?;
            e.tag = r.get_u64()?;
            e.last_addr = r.get_u64()?;
            e.stride = r.get_i64()?;
            e.conf = r.get_u8()?;
            if e.conf > 3 {
                return Err(SnapError::new("prefetch conf out of range"));
            }
        }
        self.stats.trains = r.get_u64()?;
        self.stats.issued = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_prefetch_until_stride_is_stable() {
        let mut p = StridePrefetcher::new(PrefetchConfig::paper());
        assert!(p.train(0x10, 0x1000).is_empty()); // allocate
        assert!(p.train(0x10, 0x1040).is_empty()); // learn stride
        assert!(p.train(0x10, 0x1080).is_empty()); // conf 1
        let pf = p.train(0x10, 0x10c0); // conf 2 → fire
        assert_eq!(pf.len(), 8);
        assert_eq!(pf[0], 0x1100);
        assert_eq!(pf[7], 0x12c0);
    }

    #[test]
    fn zero_stride_never_prefetches() {
        let mut p = StridePrefetcher::new(PrefetchConfig::paper());
        for _ in 0..10 {
            assert!(p.train(0x20, 0x2000).is_empty());
        }
    }

    #[test]
    fn stride_change_is_eventually_relearned() {
        let mut p = StridePrefetcher::new(PrefetchConfig::paper());
        for i in 0..6u64 {
            p.train(0x30, 0x3000 + i * 64);
        }
        // Break the pattern: confidence decays (2-bit hysteresis means the
        // first post-break train may still fire with the stale stride).
        let _ = p.train(0x30, 0x9000);
        assert!(p.train(0x30, 0x9008).is_empty(), "conf below threshold");
        assert!(p.train(0x30, 0x9010).is_empty(), "stride replaced at conf 0");
        // Re-earn confidence with the new +8 stride.
        let mut fired = Vec::new();
        for i in 3..8u64 {
            fired = p.train(0x30, 0x9000 + i * 8);
            if !fired.is_empty() {
                break;
            }
        }
        assert!(!fired.is_empty(), "new stride must be relearned");
        assert_eq!(fired[1].wrapping_sub(fired[0]), 8, "prefetches use the new stride");
    }

    #[test]
    fn negative_strides_work() {
        let mut p = StridePrefetcher::new(PrefetchConfig::paper());
        for i in 0..5i64 {
            p.train(0x40, (0x8000 - i * 64) as u64);
        }
        let pf = p.train(0x40, (0x8000 - 5 * 64) as u64);
        assert!(!pf.is_empty());
        assert_eq!(pf[0], (0x8000 - 6 * 64) as u64);
    }
}
