//! Miss Status Holding Registers.
//!
//! Each cache level has a bounded number of outstanding misses (Table 1:
//! 64 MSHRs on L1D and L2). A second miss to an in-flight line *merges*
//! (returns the pending completion time); a miss with all MSHRs busy is
//! *delayed* until the earliest entry retires.

/// Outcome of registering a miss.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MshrOutcome {
    /// A new MSHR was allocated; the miss proceeds at the given cycle
    /// (possibly later than requested if the file was full).
    Allocated {
        /// Cycle at which the miss can start going down the hierarchy.
        start: u64,
    },
    /// The line already has an in-flight miss; ride along with it.
    Merged {
        /// Completion cycle of the existing miss.
        ready: u64,
    },
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    line_addr: u64,
    ready: u64,
}

/// A bounded file of outstanding misses for one cache level.
#[derive(Clone, Debug)]
pub struct MshrFile {
    entries: Vec<Entry>,
    capacity: usize,
    /// Cumulative cycles lost waiting for a free MSHR.
    pub full_stall_cycles: u64,
    /// Number of merged (secondary) misses.
    pub merges: u64,
}

impl MshrFile {
    /// Creates a file with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    // lint:allow(hot-alloc) cold construction path: tables allocated once, before the measured loop
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        MshrFile { entries: Vec::new(), capacity, full_stall_cycles: 0, merges: 0 }
    }

    fn prune(&mut self, cycle: u64) {
        self.entries.retain(|e| e.ready > cycle);
    }

    /// Registers a miss on `line_addr` at `cycle`.
    ///
    /// For `Allocated { start }`, the caller must later call
    /// [`MshrFile::complete`] with the miss's completion cycle.
    pub fn register(&mut self, line_addr: u64, cycle: u64) -> MshrOutcome {
        self.prune(cycle);
        if let Some(e) = self.entries.iter().find(|e| e.line_addr == line_addr) {
            self.merges += 1;
            return MshrOutcome::Merged { ready: e.ready };
        }
        if self.entries.len() < self.capacity {
            MshrOutcome::Allocated { start: cycle }
        } else {
            // Delayed until the earliest in-flight miss retires.
            let earliest = self.entries.iter().map(|e| e.ready).min().unwrap_or(cycle);
            self.full_stall_cycles += earliest.saturating_sub(cycle);
            MshrOutcome::Allocated { start: earliest }
        }
    }

    /// Records the completion time of a previously `Allocated` miss so later
    /// accesses to the same line can merge with it.
    pub fn complete(&mut self, line_addr: u64, ready: u64) {
        // A full file at registration time resolves itself by `prune` once
        // the earliest entry retires; here we may temporarily exceed
        // capacity by one, which models the freed slot being reused.
        if self.entries.len() >= self.capacity {
            if let Some(pos) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.ready)
                .map(|(i, _)| i)
            {
                self.entries.swap_remove(pos);
            }
        }
        self.entries.push(Entry { line_addr, ready });
    }

    /// Current number of outstanding misses (after pruning at `cycle`).
    pub fn outstanding(&mut self, cycle: u64) -> usize {
        self.prune(cycle);
        self.entries.len()
    }
}

impl eole_predictors::snapshot::Snapshot for MshrFile {
    fn snapshot(&self, w: &mut eole_predictors::snapshot::SnapWriter) {
        // Entry order is part of the state: `complete` pushes in call
        // order and `swap_remove`/`retain` are deterministic, so a replay
        // reproduces the same vector — serialize it verbatim.
        w.put_usize(self.entries.len());
        for e in &self.entries {
            w.put_u64(e.line_addr);
            w.put_u64(e.ready);
        }
        w.put_u64(self.full_stall_cycles);
        w.put_u64(self.merges);
    }

    fn restore(
        &mut self,
        r: &mut eole_predictors::snapshot::SnapReader<'_>,
    ) -> Result<(), eole_predictors::snapshot::SnapError> {
        let n = r.get_usize()?;
        if n > self.capacity + 1 {
            // `complete` may overshoot capacity by one transiently; more
            // than that cannot be a state this file produced.
            return Err(eole_predictors::snapshot::SnapError::new("mshr count out of range"));
        }
        self.entries.clear();
        for _ in 0..n {
            let line_addr = r.get_u64()?;
            let ready = r.get_u64()?;
            self.entries.push(Entry { line_addr, ready });
        }
        self.full_stall_cycles = r.get_u64()?;
        self.merges = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_miss_allocates_immediately() {
        let mut m = MshrFile::new(4);
        assert_eq!(m.register(0x100, 10), MshrOutcome::Allocated { start: 10 });
        m.complete(0x100, 90);
    }

    #[test]
    fn secondary_miss_merges() {
        let mut m = MshrFile::new(4);
        let _ = m.register(0x100, 10);
        m.complete(0x100, 90);
        assert_eq!(m.register(0x100, 20), MshrOutcome::Merged { ready: 90 });
        assert_eq!(m.merges, 1);
    }

    #[test]
    fn full_file_delays_new_misses() {
        let mut m = MshrFile::new(2);
        let _ = m.register(0x100, 0);
        m.complete(0x100, 50);
        let _ = m.register(0x200, 0);
        m.complete(0x200, 80);
        match m.register(0x300, 0) {
            MshrOutcome::Allocated { start } => assert_eq!(start, 50),
            other => panic!("expected delayed allocation, got {other:?}"),
        }
        assert_eq!(m.full_stall_cycles, 50);
    }

    #[test]
    fn completed_misses_free_their_slots() {
        let mut m = MshrFile::new(1);
        let _ = m.register(0x100, 0);
        m.complete(0x100, 30);
        assert_eq!(m.outstanding(31), 0);
        assert_eq!(m.register(0x200, 31), MshrOutcome::Allocated { start: 31 });
    }

    #[test]
    fn merge_after_completion_time_is_a_fresh_miss() {
        let mut m = MshrFile::new(2);
        let _ = m.register(0x100, 0);
        m.complete(0x100, 30);
        // At cycle 40 the fill is done; the entry is pruned and a new miss
        // allocates (the line may have been evicted since).
        assert_eq!(m.register(0x100, 40), MshrOutcome::Allocated { start: 40 });
    }
}
