//! Open-row DRAM latency model.
//!
//! Table 1: "Single channel DDR3-1600 (11-11-11), 2 ranks, 8 banks/rank,
//! 8K row-buffer … Min. Read Lat.: 75 cycles, Max. 185 cycles." We model
//! exactly the observable envelope: per-bank open-row state gives 75-cycle
//! row hits, 130-cycle closed-row accesses and 185-cycle row conflicts
//! (precharge + activate + CAS), serialized per bank, plus a shared data-bus
//! slot per 64 B transfer. A full DDR3 command scheduler is intentionally
//! out of scope (the paper only exposes min/max latency).

/// DRAM timing/geometry parameters (in CPU cycles, 4 GHz core).
#[derive(Clone, Debug)]
pub struct DramConfig {
    /// Number of ranks.
    pub ranks: usize,
    /// Banks per rank.
    pub banks_per_rank: usize,
    /// Row-buffer size in bytes.
    pub row_bytes: u64,
    /// Load-to-use latency on a row hit.
    pub t_row_hit: u64,
    /// Latency when the bank has no open row.
    pub t_row_closed: u64,
    /// Latency when another row is open (precharge first).
    pub t_row_conflict: u64,
    /// Data-bus occupancy per 64 B transfer.
    pub t_bus: u64,
}

impl DramConfig {
    /// The paper's single-channel DDR3-1600 envelope.
    pub fn paper() -> Self {
        DramConfig {
            ranks: 2,
            banks_per_rank: 8,
            row_bytes: 8192,
            t_row_hit: 75,
            t_row_closed: 130,
            t_row_conflict: 185,
            t_bus: 4,
        }
    }
}

/// DRAM access counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct DramStats {
    /// Total accesses.
    pub accesses: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Row conflicts (had to precharge).
    pub row_conflicts: u64,
}

/// The DRAM device model.
#[derive(Clone, Debug)]
pub struct Dram {
    config: DramConfig,
    open_row: Vec<Option<u64>>,
    bank_free: Vec<u64>,
    bus_free: u64,
    stats: DramStats,
}

impl Dram {
    /// Creates a DRAM with all banks idle.
    // lint:allow(hot-alloc) cold construction path: tables allocated once, before the measured loop
    pub fn new(config: DramConfig) -> Self {
        let banks = config.ranks * config.banks_per_rank;
        Dram {
            config,
            open_row: vec![None; banks],
            bank_free: vec![0; banks],
            bus_free: 0,
            stats: DramStats::default(),
        }
    }

    /// Running counters.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    fn bank_of(&self, addr: u64) -> usize {
        let banks = self.open_row.len() as u64;
        // XOR-fold several row-bit groups into the bank index (standard
        // controller trick) so power-of-two strides don't all land in one
        // bank — including strides that are powers of the bank count.
        let line = addr / self.config.row_bytes;
        ((line ^ (line >> 4) ^ (line >> 8) ^ (line >> 12) ^ (line >> 16)) % banks) as usize
    }

    fn row_of(&self, addr: u64) -> u64 {
        addr / self.config.row_bytes / self.open_row.len() as u64
    }

    /// Performs a read (or fill) of the line containing `addr`, issued at
    /// `cycle`; returns the completion cycle.
    pub fn access(&mut self, addr: u64, cycle: u64) -> u64 {
        self.stats.accesses += 1;
        let bank = self.bank_of(addr);
        let row = self.row_of(addr);
        let latency = match self.open_row[bank] {
            Some(open) if open == row => {
                self.stats.row_hits += 1;
                self.config.t_row_hit
            }
            Some(_) => {
                self.stats.row_conflicts += 1;
                self.config.t_row_conflict
            }
            None => self.config.t_row_closed,
        };
        let start = cycle.max(self.bank_free[bank]).max(self.bus_free);
        let done = start + latency;
        self.open_row[bank] = Some(row);
        self.bank_free[bank] = done;
        self.bus_free = start + self.config.t_bus;
        done
    }
}

impl eole_predictors::snapshot::Snapshot for Dram {
    fn snapshot(&self, w: &mut eole_predictors::snapshot::SnapWriter) {
        w.put_usize(self.open_row.len());
        for row in &self.open_row {
            match row {
                None => w.put_bool(false),
                Some(v) => {
                    w.put_bool(true);
                    w.put_u64(*v);
                }
            }
        }
        w.put_usize(self.bank_free.len());
        for &f in &self.bank_free {
            w.put_u64(f);
        }
        w.put_u64(self.bus_free);
        w.put_u64(self.stats.accesses);
        w.put_u64(self.stats.row_hits);
        w.put_u64(self.stats.row_conflicts);
    }

    fn restore(
        &mut self,
        r: &mut eole_predictors::snapshot::SnapReader<'_>,
    ) -> Result<(), eole_predictors::snapshot::SnapError> {
        use eole_predictors::snapshot::SnapError;
        if r.get_usize()? != self.open_row.len() {
            return Err(SnapError::new("dram bank count mismatch"));
        }
        for row in &mut self.open_row {
            *row = if r.get_bool()? { Some(r.get_u64()?) } else { None };
        }
        if r.get_usize()? != self.bank_free.len() {
            return Err(SnapError::new("dram bank_free count mismatch"));
        }
        for f in &mut self.bank_free {
            *f = r.get_u64()?;
        }
        self.bus_free = r.get_u64()?;
        self.stats.accesses = r.get_u64()?;
        self.stats.row_hits = r.get_u64()?;
        self.stats.row_conflicts = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_pays_closed_row_latency() {
        let mut d = Dram::new(DramConfig::paper());
        assert_eq!(d.access(0x0, 100), 100 + 130);
    }

    #[test]
    fn second_access_to_same_row_hits() {
        let mut d = Dram::new(DramConfig::paper());
        let t1 = d.access(0x0, 0);
        // Same row, after the bank frees.
        let t2 = d.access(0x40, t1);
        assert_eq!(t2, t1 + 75);
        assert_eq!(d.stats().row_hits, 1);
    }

    #[test]
    fn different_row_same_bank_conflicts() {
        // With XOR bank hashing the colliding stride is not a fixed
        // constant; search for an address that shares bank 0 with address
        // 0 but sits in another row.
        let cfg = DramConfig::paper();
        let mut found = false;
        for k in 1..4096u64 {
            let mut d = Dram::new(cfg.clone());
            let t1 = d.access(0x0, 0);
            let addr = k * cfg.row_bytes;
            let t2 = d.access(addr, t1);
            if t2 == t1 + cfg.t_row_conflict {
                assert_eq!(d.stats().row_conflicts, 1);
                found = true;
                break;
            }
        }
        assert!(found, "some stride must still collide (finite banks)");
    }

    #[test]
    fn power_of_two_plane_strides_spread_across_banks() {
        // Eight accesses 2 MB apart (the lbm plane stride) must not
        // serialize on one bank.
        let cfg = DramConfig::paper();
        let mut d = Dram::new(cfg.clone());
        let mut worst = 0;
        for p in 0..8u64 {
            let done = d.access(p * (2 << 20), 0);
            worst = worst.max(done);
        }
        // Bank-parallel: bounded by bus slots + one access latency, far
        // below 8 serialized row-misses.
        assert!(worst < 2 * cfg.t_row_conflict, "worst completion {worst}");
    }

    #[test]
    fn busy_bank_serializes() {
        let mut d = Dram::new(DramConfig::paper());
        let t1 = d.access(0x0, 0); // bank busy until t1
        let t2 = d.access(0x40, 1); // issued while busy
        assert_eq!(t2, t1 + 75, "second access waits for the bank");
    }

    #[test]
    fn different_banks_overlap_except_bus() {
        let cfg = DramConfig::paper();
        let mut d = Dram::new(cfg.clone());
        let t1 = d.access(0x0, 0);
        let t2 = d.access(cfg.row_bytes, 0); // next bank
        // Bank-parallel: both finish around t_closed, offset by bus slot.
        assert_eq!(t1, 130);
        assert_eq!(t2, cfg.t_bus + 130);
    }

    #[test]
    fn latencies_stay_in_the_paper_envelope() {
        let cfg = DramConfig::paper();
        let mut d = Dram::new(cfg);
        let mut addr = 0u64;
        for i in 0..1000u64 {
            let now = i * 200; // spaced out: no queueing
            let done = d.access(addr, now);
            let lat = done - now;
            assert!((75..=185).contains(&lat), "latency {lat} out of envelope");
            addr = addr.wrapping_add(0x0012_3440);
        }
    }
}
