//! The full memory hierarchy of Table 1: split 32 KB L1I/L1D, unified 2 MB
//! L2 with a stride prefetcher, and a DDR3-like DRAM behind it.
//!
//! The pipeline calls [`MemoryHierarchy::load`] / [`MemoryHierarchy::fetch`]
//! with an issue cycle and receives the completion cycle; stores drain at
//! commit through [`MemoryHierarchy::store`] (write-allocate, write-back,
//! hidden behind an un-throttled write buffer — a documented
//! simplification).

use crate::cache::{Cache, CacheConfig, CacheStats, Lookup};
use crate::dram::{Dram, DramConfig, DramStats};
use crate::mshr::{MshrFile, MshrOutcome};
use crate::prefetch::{PrefetchConfig, PrefetchStats, StridePrefetcher};

/// Configuration of the whole hierarchy.
#[derive(Clone, Debug)]
pub struct HierarchyConfig {
    /// Instruction cache.
    pub l1i: CacheConfig,
    /// Data cache.
    pub l1d: CacheConfig,
    /// Unified second level.
    pub l2: CacheConfig,
    /// DRAM behind the L2.
    pub dram: DramConfig,
    /// L1D MSHRs (Table 1: 64).
    pub l1d_mshrs: usize,
    /// L1I MSHRs.
    pub l1i_mshrs: usize,
    /// L2 MSHRs (Table 1: 64).
    pub l2_mshrs: usize,
    /// L2 stride prefetcher; `None` disables prefetching.
    pub prefetch: Option<PrefetchConfig>,
}

impl HierarchyConfig {
    /// The paper's Table 1 memory system.
    pub fn paper() -> Self {
        HierarchyConfig {
            l1i: CacheConfig::l1i_paper(),
            l1d: CacheConfig::l1d_paper(),
            l2: CacheConfig::l2_paper(),
            dram: DramConfig::paper(),
            l1d_mshrs: 64,
            l1i_mshrs: 16,
            l2_mshrs: 64,
            prefetch: Some(PrefetchConfig::paper()),
        }
    }
}

/// Snapshot of all memory-system counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct MemStats {
    /// L1I hit/miss counters.
    pub l1i: CacheStats,
    /// L1D hit/miss counters.
    pub l1d: CacheStats,
    /// L2 hit/miss counters.
    pub l2: CacheStats,
    /// DRAM counters.
    pub dram: DramStats,
    /// Prefetch counters.
    pub prefetch: PrefetchStats,
    /// Dirty lines evicted from L1D/L2 (write-back traffic).
    pub writebacks: u64,
}

impl MemStats {
    /// Accumulates another snapshot's counters into this one (the stitch
    /// operation for interval-parallel runs; all fields are sums).
    pub fn merge(&mut self, other: &MemStats) {
        self.l1i.accesses += other.l1i.accesses;
        self.l1i.misses += other.l1i.misses;
        self.l1d.accesses += other.l1d.accesses;
        self.l1d.misses += other.l1d.misses;
        self.l2.accesses += other.l2.accesses;
        self.l2.misses += other.l2.misses;
        self.dram.accesses += other.dram.accesses;
        self.dram.row_hits += other.dram.row_hits;
        self.dram.row_conflicts += other.dram.row_conflicts;
        self.prefetch.trains += other.prefetch.trains;
        self.prefetch.issued += other.prefetch.issued;
        self.writebacks += other.writebacks;
    }
}

/// The memory hierarchy.
#[derive(Clone, Debug)]
pub struct MemoryHierarchy {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    dram: Dram,
    l1i_mshrs: MshrFile,
    l1d_mshrs: MshrFile,
    l2_mshrs: MshrFile,
    prefetcher: Option<StridePrefetcher>,
    /// Reused prefetch-target buffer (≤ degree entries; reaches its
    /// high-water mark on the first trigger and never reallocates after).
    pf_targets: Vec<u64>,
    writebacks: u64,
}

impl MemoryHierarchy {
    /// Builds the hierarchy from a configuration.
    // lint:allow(hot-alloc) cold construction path: tables allocated once, before the measured loop
    pub fn new(config: &HierarchyConfig) -> Self {
        MemoryHierarchy {
            l1i: Cache::new(config.l1i.clone()),
            l1d: Cache::new(config.l1d.clone()),
            l2: Cache::new(config.l2.clone()),
            dram: Dram::new(config.dram.clone()),
            l1i_mshrs: MshrFile::new(config.l1i_mshrs),
            l1d_mshrs: MshrFile::new(config.l1d_mshrs),
            l2_mshrs: MshrFile::new(config.l2_mshrs),
            prefetcher: config.prefetch.clone().map(StridePrefetcher::new),
            pf_targets: Vec::with_capacity(
                config.prefetch.as_ref().map(|p| p.degree).unwrap_or(0),
            ),
            writebacks: 0,
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> MemStats {
        MemStats {
            l1i: self.l1i.stats(),
            l1d: self.l1d.stats(),
            l2: self.l2.stats(),
            dram: self.dram.stats(),
            prefetch: self
                .prefetcher
                .as_ref()
                .map(|p| p.stats())
                .unwrap_or_default(),
            writebacks: self.writebacks,
        }
    }

    /// Fetches the line containing `addr` into L2 (or merges with an
    /// in-flight L2 miss) and returns the cycle its data is available.
    fn access_l2(&mut self, addr: u64, cycle: u64) -> u64 {
        let line = self.l2.line_addr(addr);
        match self.l2.lookup(line, cycle) {
            Lookup::Hit { available } => available,
            Lookup::Miss => match self.l2_mshrs.register(line, cycle) {
                MshrOutcome::Merged { ready } => ready.max(cycle),
                MshrOutcome::Allocated { start } => {
                    let done = self.dram.access(line, start + self.l2.config().latency);
                    if let Some(ev) = self.l2.fill(line, done) {
                        if ev.dirty {
                            self.writebacks += 1;
                        }
                    }
                    self.l2_mshrs.complete(line, done);
                    done
                }
            },
        }
    }

    /// Issues the prefetcher's suggestions for a demand load miss.
    fn maybe_prefetch(&mut self, pc: u64, addr: u64, cycle: u64) {
        let Some(pf) = self.prefetcher.as_mut() else { return };
        pf.train_into(pc, addr, &mut self.pf_targets);
        for i in 0..self.pf_targets.len() {
            let t = self.pf_targets[i];
            let line = self.l2.line_addr(t);
            if self.l2.probe(line) {
                continue;
            }
            let done = self.dram.access(line, cycle + self.l2.config().latency);
            if let Some(ev) = self.l2.fill(line, done) {
                if ev.dirty {
                    self.writebacks += 1;
                }
            }
        }
    }

    /// A demand load by the µ-op at `pc` to `addr`, issued at `cycle`;
    /// returns the completion cycle (data usable by dependents).
    pub fn load(&mut self, pc: u64, addr: u64, cycle: u64) -> u64 {
        let line = self.l1d.line_addr(addr);
        match self.l1d.lookup(line, cycle) {
            Lookup::Hit { available } => available,
            Lookup::Miss => {
                self.maybe_prefetch(pc, addr, cycle);
                match self.l1d_mshrs.register(line, cycle) {
                    MshrOutcome::Merged { ready } => ready.max(cycle),
                    MshrOutcome::Allocated { start } => {
                        let done = self.access_l2(line, start + self.l1d.config().latency);
                        if let Some(ev) = self.l1d.fill(line, done) {
                            if ev.dirty {
                                self.writebacks += 1;
                                // Dirty victim drains into L2.
                                self.l2.fill(ev.line_addr, done);
                                self.l2.mark_dirty(ev.line_addr);
                            }
                        }
                        self.l1d_mshrs.complete(line, done);
                        done
                    }
                }
            }
        }
    }

    /// A committed store to `addr` at `cycle` (write-allocate, write-back).
    /// The write buffer hides its latency from the pipeline.
    pub fn store(&mut self, pc: u64, addr: u64, cycle: u64) {
        let line = self.l1d.line_addr(addr);
        match self.l1d.lookup(line, cycle) {
            Lookup::Hit { .. } => {
                self.l1d.mark_dirty(line);
            }
            Lookup::Miss => {
                let _ = pc;
                match self.l1d_mshrs.register(line, cycle) {
                    MshrOutcome::Merged { .. } => {
                        // The in-flight fill will arrive; dirty it now.
                        self.l1d.fill(line, cycle);
                        self.l1d.mark_dirty(line);
                    }
                    MshrOutcome::Allocated { start } => {
                        let done = self.access_l2(line, start + self.l1d.config().latency);
                        if let Some(ev) = self.l1d.fill(line, done) {
                            if ev.dirty {
                                self.writebacks += 1;
                                self.l2.fill(ev.line_addr, done);
                                self.l2.mark_dirty(ev.line_addr);
                            }
                        }
                        self.l1d_mshrs.complete(line, done);
                        self.l1d.mark_dirty(line);
                    }
                }
            }
        }
    }

    /// An instruction fetch of the line containing byte address `addr`;
    /// returns the completion cycle (fetch stalls until then on a miss).
    pub fn fetch(&mut self, addr: u64, cycle: u64) -> u64 {
        let line = self.l1i.line_addr(addr);
        match self.l1i.lookup(line, cycle) {
            Lookup::Hit { available } => available,
            Lookup::Miss => match self.l1i_mshrs.register(line, cycle) {
                MshrOutcome::Merged { ready } => ready.max(cycle),
                MshrOutcome::Allocated { start } => {
                    let done = self.access_l2(line, start + self.l1i.config().latency);
                    self.l1i.fill(line, done);
                    self.l1i_mshrs.complete(line, done);
                    done
                }
            },
        }
    }
}

impl eole_predictors::snapshot::Snapshot for MemoryHierarchy {
    fn snapshot(&self, w: &mut eole_predictors::snapshot::SnapWriter) {
        self.l1i.snapshot(w);
        self.l1d.snapshot(w);
        self.l2.snapshot(w);
        self.dram.snapshot(w);
        self.l1i_mshrs.snapshot(w);
        self.l1d_mshrs.snapshot(w);
        self.l2_mshrs.snapshot(w);
        match &self.prefetcher {
            None => w.put_bool(false),
            Some(pf) => {
                w.put_bool(true);
                pf.snapshot(w);
            }
        }
        // `pf_targets` is per-call scratch (always drained before the next
        // observable event) — not state.
        w.put_u64(self.writebacks);
    }

    fn restore(
        &mut self,
        r: &mut eole_predictors::snapshot::SnapReader<'_>,
    ) -> Result<(), eole_predictors::snapshot::SnapError> {
        use eole_predictors::snapshot::SnapError;
        self.l1i.restore(r)?;
        self.l1d.restore(r)?;
        self.l2.restore(r)?;
        self.dram.restore(r)?;
        self.l1i_mshrs.restore(r)?;
        self.l1d_mshrs.restore(r)?;
        self.l2_mshrs.restore(r)?;
        let has_pf = r.get_bool()?;
        match (&mut self.prefetcher, has_pf) {
            (Some(pf), true) => pf.restore(r)?,
            (None, false) => {}
            _ => return Err(SnapError::new("prefetcher presence mismatch")),
        }
        self.pf_targets.clear();
        self.writebacks = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper() -> MemoryHierarchy {
        MemoryHierarchy::new(&HierarchyConfig::paper())
    }

    #[test]
    fn l1_hit_costs_two_cycles() {
        let mut m = paper();
        let t1 = m.load(0x10, 0x1000, 0); // cold miss
        let t2 = m.load(0x10, 0x1008, t1); // same line: L1 hit
        assert_eq!(t2, t1 + 2);
    }

    #[test]
    fn cold_load_goes_to_dram() {
        let mut m = paper();
        let done = m.load(0x10, 0x1000, 0);
        // L1 (2) + L2 (12) + DRAM closed-row (130) ≈ 144.
        assert!(done >= 75 + 14, "done = {done}");
        assert_eq!(m.stats().dram.accesses, 1);
    }

    #[test]
    fn l2_hit_avoids_dram() {
        let mut m = paper();
        let t1 = m.load(0x10, 0x1000, 0);
        // A different L1 line, same L2 residency? Use an address beyond L1
        // but previously filled into L2 via eviction patterns — simplest:
        // re-load the same line after evicting it from L1.
        // Fill 5 lines mapping to the same L1 set (128 sets × 64 B = 8 KB stride).
        for i in 1..=4u64 {
            m.load(0x10, 0x1000 + i * 8192, t1 + i * 200);
        }
        let before = m.stats().dram.accesses;
        let t2 = m.load(0x10, 0x1000, t1 + 2000); // L1-evicted, L2 hit
        assert_eq!(m.stats().dram.accesses, before, "no new DRAM access");
        assert_eq!(t2, t1 + 2000 + 2 + 12);
    }

    #[test]
    fn inflight_fill_serves_secondary_access() {
        let mut m = paper();
        let t1 = m.load(0x10, 0x2000, 0);
        // Same line while the miss is in flight: the L1 line is installed
        // with `ready_at = t1`, so the second access waits for the fill and
        // pays only the L1 hit latency on top — no second DRAM trip.
        let t2 = m.load(0x11, 0x2010, 1);
        assert_eq!(t2, t1 + 2);
        assert_eq!(m.stats().dram.accesses, 1);
    }

    #[test]
    fn store_marks_line_dirty_and_writes_back() {
        let mut m = paper();
        m.store(0x20, 0x3000, 0);
        // Evict the dirty line by filling 4 more lines in its set.
        for i in 1..=4u64 {
            m.load(0x21, 0x3000 + i * 8192, 1000 * i);
        }
        assert!(m.stats().writebacks >= 1);
    }

    #[test]
    fn streaming_loads_trigger_prefetch() {
        let mut m = paper();
        let mut cycle = 0;
        // March through memory with a fixed stride from one pc.
        for i in 0..32u64 {
            cycle = m.load(0x40, 0x10_0000 + i * 64, cycle) + 1;
        }
        assert!(m.stats().prefetch.issued > 0, "prefetcher should fire");
        // Late loads should increasingly hit in L2 (prefetched):
        // total DRAM accesses must be well below 32 demand lines + prefetch.
        let s = m.stats();
        assert!(s.l2.misses < 32, "L2 demand misses = {}", s.l2.misses);
    }

    #[test]
    fn fetch_misses_then_hits() {
        let mut m = paper();
        let t1 = m.fetch(0x0, 0);
        assert!(t1 > 10, "cold fetch miss goes to L2/DRAM");
        let t2 = m.fetch(0x4, t1);
        assert_eq!(t2, t1 + 1, "same line fetch hits");
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut m = paper();
            let mut cycle = 0;
            let mut acc = 0u64;
            for i in 0..200u64 {
                let addr = 0x8000 + (i * 7919) % 65536;
                cycle = m.load(0x50, addr, cycle) + 1;
                acc ^= cycle;
            }
            (cycle, acc, m.stats().dram.accesses)
        };
        assert_eq!(run(), run());
    }
}
