//! Store Sets memory-dependence predictor (Chrysos & Emer, ISCA 1998; the
//! paper's \[4\], Table 1: "1K-SSID/LFST Store Sets").
//!
//! Loads are allowed to issue speculatively past older stores with unknown
//! addresses. When that speculation turns out wrong (a memory-order
//! violation), the offending load and store are placed in the same *store
//! set*; afterwards the load waits for any in-flight store of its set.
//!
//! This module owns the Store Set ID Table (SSIT) and the set-merge rules;
//! the Last Fetched Store Table (LFST) is inherently dynamic pipeline state
//! and lives in the core's load/store queue logic.

use crate::history::hash_pc;

const INVALID: u16 = u16::MAX;

/// Store-set identifier.
pub type Ssid = u16;

/// The SSIT plus SSID allocation/merge policy.
#[derive(Clone, Debug)]
pub struct StoreSets {
    ssit: Vec<u16>,
    num_ssids: u16,
    next_ssid: u16,
}

impl StoreSets {
    /// The paper's configuration: 1K-entry SSIT, 128 SSIDs (bounded by the
    /// LFST size).
    pub fn paper() -> Self {
        Self::new(1024, 128)
    }

    /// Creates a table with `ssit_entries` slots and `num_ssids` sets.
    ///
    /// # Panics
    ///
    /// Panics if `num_ssids` is 0 or ≥ `u16::MAX`.
    pub fn new(ssit_entries: usize, num_ssids: u16) -> Self {
        assert!(num_ssids > 0 && num_ssids < u16::MAX);
        StoreSets {
            ssit: vec![INVALID; ssit_entries.next_power_of_two().max(1)],
            num_ssids,
            next_ssid: 0,
        }
    }

    fn index(&self, pc: u64) -> usize {
        (hash_pc(pc, 0x5e75) as usize) & (self.ssit.len() - 1)
    }

    /// The store set the µ-op at `pc` belongs to, if any.
    pub fn ssid(&self, pc: u64) -> Option<Ssid> {
        let v = self.ssit[self.index(pc)];
        (v != INVALID).then_some(v)
    }

    /// Number of distinct SSIDs (the LFST must have this many slots).
    pub fn num_ssids(&self) -> u16 {
        self.num_ssids
    }

    /// Records a memory-order violation between a load and the older store
    /// it incorrectly bypassed, merging their store sets per Chrysos-Emer:
    ///
    /// * neither has a set → allocate a fresh SSID for both;
    /// * one has a set → the other joins it;
    /// * both have sets → both adopt the smaller SSID.
    pub fn on_violation(&mut self, load_pc: u64, store_pc: u64) {
        let li = self.index(load_pc);
        let si = self.index(store_pc);
        let (l, s) = (self.ssit[li], self.ssit[si]);
        match (l != INVALID, s != INVALID) {
            (false, false) => {
                let id = self.next_ssid;
                self.next_ssid = (self.next_ssid + 1) % self.num_ssids;
                self.ssit[li] = id;
                self.ssit[si] = id;
            }
            (true, false) => self.ssit[si] = l,
            (false, true) => self.ssit[li] = s,
            (true, true) => {
                let id = l.min(s);
                self.ssit[li] = id;
                self.ssit[si] = id;
            }
        }
    }

    /// Forgets all assignments (periodic clearing lets stale sets decay).
    pub fn clear(&mut self) {
        self.ssit.fill(INVALID);
    }

    /// Storage in bits (one SSID per SSIT entry).
    pub fn storage_bits(&self) -> u64 {
        self.ssit.len() as u64 * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_empty() {
        let ss = StoreSets::paper();
        assert_eq!(ss.ssid(0x10), None);
        assert_eq!(ss.ssid(0x20), None);
    }

    #[test]
    fn violation_creates_a_shared_set() {
        let mut ss = StoreSets::paper();
        ss.on_violation(0x10, 0x20);
        let a = ss.ssid(0x10).unwrap();
        let b = ss.ssid(0x20).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn one_sided_membership_is_adopted() {
        let mut ss = StoreSets::paper();
        ss.on_violation(0x10, 0x20); // both get set 0
        ss.on_violation(0x30, 0x20); // load 0x30 joins store 0x20's set
        assert_eq!(ss.ssid(0x30), ss.ssid(0x20));
    }

    #[test]
    fn double_membership_merges_to_min() {
        let mut ss = StoreSets::paper();
        ss.on_violation(0x10, 0x20); // set 0
        ss.on_violation(0x30, 0x40); // set 1
        let s0 = ss.ssid(0x10).unwrap();
        let s1 = ss.ssid(0x30).unwrap();
        assert_ne!(s0, s1);
        ss.on_violation(0x10, 0x40); // merge: both become min(s0, s1)
        assert_eq!(ss.ssid(0x10).unwrap(), s0.min(s1));
        assert_eq!(ss.ssid(0x40).unwrap(), s0.min(s1));
    }

    #[test]
    fn ssid_allocation_wraps() {
        let mut ss = StoreSets::new(256, 2);
        ss.on_violation(1, 2);
        ss.on_violation(3, 4);
        ss.on_violation(5, 6); // wraps to SSID 0 again
        assert!(ss.ssid(5).unwrap() < 2);
    }

    #[test]
    fn clear_forgets_everything() {
        let mut ss = StoreSets::paper();
        ss.on_violation(0x10, 0x20);
        ss.clear();
        assert_eq!(ss.ssid(0x10), None);
    }
}
