//! # eole-predictors
//!
//! Every prediction structure the EOLE paper relies on, implemented from the
//! primary sources and sized per the paper's Tables 1-2:
//!
//! * **Value predictors** ([`value`]): last-value, stride, 2-delta stride,
//!   order-4 FCM, VTAGE, the evaluated [`value::VtageTwoDeltaStride`]
//!   hybrid, and the block-based [`value::DVtage`] (BeBoP, HPCA 2015) --
//!   all gated by Forward Probabilistic Counters ([`fpc`]). The timing
//!   core drives them through [`value::BlockVp`], the fetch-block-granular
//!   front with the speculative in-flight window.
//! * **Branch predictors** ([`branch`]): TAGE (1 + 12 components) with
//!   storage-free confidence (very-high-confidence branches are the ones
//!   EOLE late-executes), a 2-way 4K BTB, and a 32-entry return stack.
//! * **Memory-dependence prediction** ([`storesets`]): Chrysos-Emer Store
//!   Sets (1K SSIT / 128 SSIDs).
//!
//! All tables are deterministic: probabilistic updates draw from the seeded
//! [`rng::SimRng`].
//!
//! ## Example
//!
//! ```
//! use eole_predictors::history::BranchHistory;
//! use eole_predictors::value::{ValuePredictor, VtageTwoDeltaStride};
//!
//! let hist = BranchHistory::new();
//! let mut vp = VtageTwoDeltaStride::paper(42);
//! // A strided sequence becomes predictable after a few instances.
//! for i in 0..2000u64 {
//!     vp.train(0x400, hist.view(0), 8 * i);
//! }
//! let p = vp.predict(0x400, hist.view(0)).expect("entry allocated");
//! assert_eq!(p.value, 8 * 2000);
//! ```

#![forbid(unsafe_code)]

pub mod branch;
pub mod fpc;
pub mod history;
pub mod rng;
pub mod snapshot;
pub mod storesets;
pub mod value;
