//! Global conditional-branch history, shared by TAGE and VTAGE.
//!
//! The trace-driven simulator precomputes the (always correct-path) outcome
//! log once; predictors index it through a [`HistoryView`] anchored at the
//! µ-op's fetch position. Because the log never changes, squash recovery
//! needs no history repair — a refetched µ-op simply presents the same
//! position again.
//!
//! Indices and tags are derived by hashing the most recent `L` outcome bits
//! together with the pc and a per-component seed (instead of maintaining
//! incrementally folded registers, which would need checkpointing).

/// Append-only log of conditional-branch outcomes (bit-packed).
#[derive(Clone, Debug, Default)]
pub struct BranchHistory {
    words: Vec<u64>,
    len: usize,
}

impl BranchHistory {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a log from a slice of outcomes (index 0 = oldest).
    pub fn from_outcomes(outcomes: &[bool]) -> Self {
        let mut h = Self::new();
        for &o in outcomes {
            h.push(o);
        }
        h
    }

    /// Appends one outcome.
    pub fn push(&mut self, taken: bool) {
        let word = self.len / 64;
        let bit = self.len % 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if taken {
            self.words[word] |= 1u64 << bit;
        }
        self.len += 1;
    }

    /// Number of logged outcomes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Outcome at absolute position `i` (0 = oldest).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn outcome(&self, i: usize) -> bool {
        assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// A view of the history as seen by a µ-op fetched after `pos` outcomes
    /// had been logged (i.e. outcomes `[0, pos)` are visible).
    ///
    /// # Panics
    ///
    /// Panics if `pos > len()`.
    pub fn view(&self, pos: usize) -> HistoryView<'_> {
        assert!(pos <= self.len, "history position {pos} beyond log length {}", self.len);
        HistoryView { hist: self, pos }
    }
}

/// Maximum history length supported by [`HistoryView::fold`], in bits.
pub const MAX_HISTORY_BITS: usize = 640;

/// A read-only window over the most recent outcomes at some fetch position.
#[derive(Clone, Copy, Debug)]
pub struct HistoryView<'a> {
    hist: &'a BranchHistory,
    pos: usize,
}

impl HistoryView<'_> {
    /// The number of outcomes visible to this view.
    pub fn visible(&self) -> usize {
        self.pos
    }

    /// Hashes the most recent `length` bits (zero-padded if fewer are
    /// visible) with `seed`. Used to build table indices and tags.
    ///
    /// # Panics
    ///
    /// Panics if `length > MAX_HISTORY_BITS`.
    pub fn fold(&self, length: usize, seed: u64) -> u64 {
        assert!(length <= MAX_HISTORY_BITS);
        let mut h = seed ^ 0x9e37_79b9_7f4a_7c15;
        if length == 0 {
            return mix(h);
        }
        let take = length.min(self.pos);
        let start = self.pos - take; // absolute bit index of the oldest taken bit
        let mut remaining = take;
        let mut idx = start;
        while remaining > 0 {
            let word = idx / 64;
            let bit = idx % 64;
            let chunk = (64 - bit).min(remaining);
            let mut w = self.hist.words[word] >> bit;
            if chunk < 64 {
                w &= (1u64 << chunk) - 1;
            }
            h ^= w.wrapping_mul(0xff51_afd7_ed55_8ccd);
            h = h.rotate_left(31).wrapping_mul(0xc4ce_b9fe_1a85_ec53);
            idx += chunk;
            remaining -= chunk;
        }
        // Make the amount of history that was actually visible part of the
        // hash so short prefixes don't alias full-length histories.
        h ^= take as u64;
        mix(h)
    }
}

/// Final avalanche mix (from MurmurHash3's fmix64).
fn mix(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    h
}

/// Hashes a pc with a seed (for tagless table indexing).
pub fn hash_pc(pc: u64, seed: u64) -> u64 {
    mix(pc.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn push_and_read_back() {
        let mut h = BranchHistory::new();
        let pattern = [true, false, true, true, false];
        for &p in &pattern {
            h.push(p);
        }
        for (i, &p) in pattern.iter().enumerate() {
            assert_eq!(h.outcome(i), p);
        }
        assert_eq!(h.len(), 5);
    }

    #[test]
    fn fold_depends_only_on_visible_window() {
        // Two logs that agree on the last 8 outcomes but differ before.
        let mut a = BranchHistory::new();
        let mut b = BranchHistory::new();
        for i in 0..100 {
            a.push(i % 3 == 0);
            b.push(i % 7 == 0);
        }
        let tail = [true, true, false, true, false, false, true, false];
        for &t in &tail {
            a.push(t);
            b.push(t);
        }
        let va = a.view(a.len());
        let vb = b.view(b.len());
        assert_eq!(va.fold(8, 1), vb.fold(8, 1));
        assert_ne!(va.fold(64, 1), vb.fold(64, 1));
    }

    #[test]
    fn fold_changes_with_seed_and_length() {
        let h = BranchHistory::from_outcomes(&[true; 100]);
        let v = h.view(100);
        assert_ne!(v.fold(16, 1), v.fold(16, 2));
        assert_ne!(v.fold(16, 1), v.fold(32, 1));
    }

    #[test]
    fn view_at_old_position_is_stable_after_pushes() {
        let mut h = BranchHistory::from_outcomes(&[true, false, true]);
        let before = h.view(3).fold(64, 9);
        h.push(true);
        h.push(false);
        assert_eq!(h.view(3).fold(64, 9), before);
    }

    #[test]
    fn word_boundary_crossing() {
        let mut h = BranchHistory::new();
        for i in 0..130 {
            h.push(i % 2 == 0);
        }
        // Should not panic and should see 130 outcomes.
        let v = h.view(130);
        assert_eq!(v.visible(), 130);
        let _ = v.fold(128, 3);
        let _ = v.fold(640, 3);
    }

    proptest! {
        #[test]
        fn fold_is_deterministic(outcomes in proptest::collection::vec(any::<bool>(), 0..300),
                                 len in 0usize..256, seed: u64) {
            let h = BranchHistory::from_outcomes(&outcomes);
            let v = h.view(outcomes.len());
            prop_assert_eq!(v.fold(len, seed), v.fold(len, seed));
        }

        #[test]
        fn last_bit_always_matters(outcomes in proptest::collection::vec(any::<bool>(), 1..200)) {
            let mut flipped = outcomes.clone();
            let last = flipped.len() - 1;
            flipped[last] = !flipped[last];
            let a = BranchHistory::from_outcomes(&outcomes);
            let b = BranchHistory::from_outcomes(&flipped);
            let va = a.view(outcomes.len());
            let vb = b.view(outcomes.len());
            prop_assert_ne!(va.fold(4, 0), vb.fold(4, 0));
        }
    }
}
