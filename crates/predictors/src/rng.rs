//! Deterministic pseudo-random source for probabilistic counters and
//! randomized allocation.
//!
//! Predictor updates must be bit-reproducible across runs (the test suite
//! asserts simulator determinism), so we use a tiny self-contained
//! xorshift64* generator instead of an external RNG whose stream might
//! change between crate versions.

/// A seeded xorshift64* generator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates a generator from a non-zero seed (zero is mapped to a fixed
    /// constant, since xorshift cannot leave the zero state).
    pub fn new(seed: u64) -> Self {
        SimRng { state: if seed == 0 { 0x9e37_79b9_7f4a_7c15 } else { seed } }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// A uniform value in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }

    /// Bernoulli event with probability `1/n` (`n == 0` or `n == 1` means
    /// always true).
    pub fn one_in(&mut self, n: u64) -> bool {
        n <= 1 || self.below(n) == 0
    }
}

impl crate::snapshot::Snapshot for SimRng {
    fn snapshot(&self, w: &mut crate::snapshot::SnapWriter) {
        w.put_u64(self.state);
    }

    fn restore(
        &mut self,
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<(), crate::snapshot::SnapError> {
        let state = r.get_u64()?;
        if state == 0 {
            // xorshift cannot leave the zero state; a live generator can
            // never hold it, so a zero here is corruption.
            return Err(crate::snapshot::SnapError::new("zero rng state"));
        }
        self.state = state;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = SimRng::new(0);
        assert_ne!(r.next_u64(), r.next_u64());
    }

    #[test]
    fn one_in_probability_roughly_matches() {
        let mut r = SimRng::new(7);
        let hits = (0..64_000).filter(|_| r.one_in(32)).count();
        // Expect ~2000; allow generous slack.
        assert!((1500..2600).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn one_in_one_is_always_true() {
        let mut r = SimRng::new(3);
        assert!(r.one_in(1));
        assert!(r.one_in(0));
    }
}
