//! TAGE — TAgged GEometric history length branch predictor
//! (Seznec & Michaud, JILP 2006; the paper's [31]), with confidence
//! estimation in the spirit of Seznec, HPCA 2011 (the paper's [30]).
//!
//! Confidence: [30] classifies predictions by the provider counter, with
//! saturated counters empirically mispredicting <0.5% on SPEC. Our
//! synthetic suite contains *biased-but-noisy* branches (e.g. an 82%-taken
//! type check) whose 3-bit counters would park at saturation, poisoning
//! the very-high-confidence class that EOLE late-executes. We therefore
//! implement the class with an explicit 2-bit *probabilistic* confidence
//! counter per entry (incremented with probability 1/32 on a correct
//! prediction, reset on a misprediction) — the wide-counter emulation [30]
//! itself proposes. A branch only reaches very-high confidence after an
//! expected ~128 consecutive correct predictions, which noisy branches
//! essentially never achieve.
//!
//! The paper's front end uses "TAGE 1+12 components, 15K-entry total,
//! 20 cycles min. mis. penalty". We implement a 4K-entry bimodal base plus
//! 12 tagged components of 1K entries with geometric history lengths
//! 4…640.

use crate::branch::{Bimodal, BranchConfidence, BranchPrediction, DirectionPredictor};
use crate::history::{hash_pc, HistoryView};
use crate::rng::SimRng;

/// Geometry of a [`Tage`] predictor.
#[derive(Clone, Debug)]
pub struct TageConfig {
    /// Entries in the bimodal base.
    pub base_entries: usize,
    /// Entries per tagged component.
    pub tagged_entries: usize,
    /// Geometric history lengths (ascending), one per tagged component.
    pub history_lengths: Vec<usize>,
    /// Tag bits of the shortest component; grows by 1 every two ranks.
    pub base_tag_bits: u32,
}

impl TageConfig {
    /// The paper's configuration: 1 + 12 components.
    pub fn paper() -> Self {
        TageConfig {
            base_entries: 4096,
            tagged_entries: 1024,
            history_lengths: vec![4, 6, 10, 16, 25, 40, 64, 101, 160, 254, 403, 640],
            base_tag_bits: 9,
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct TageEntry {
    valid: bool,
    tag: u32,
    /// 3-bit signed counter, −4..=3; ≥0 predicts taken.
    ctr: i8,
    /// 2-bit usefulness.
    useful: u8,
    /// 2-bit probabilistic confidence (3 = very high).
    conf: u8,
}

/// The TAGE direction predictor.
#[derive(Clone, Debug)]
pub struct Tage {
    config: TageConfig,
    base: Bimodal,
    base_conf: Vec<u8>,
    tagged: Vec<Vec<TageEntry>>,
    rng: SimRng,
    updates: u64,
}

/// Period (in updates) of the graceful usefulness decay.
const USEFUL_RESET_PERIOD: u64 = 1 << 18;

impl Tage {
    /// Creates a TAGE with the paper's geometry.
    pub fn paper(seed: u64) -> Self {
        Self::new(TageConfig::paper(), seed)
    }

    /// Creates a TAGE from an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if `history_lengths` is empty or not strictly ascending.
    pub fn new(config: TageConfig, seed: u64) -> Self {
        assert!(!config.history_lengths.is_empty());
        assert!(config.history_lengths.windows(2).all(|w| w[0] < w[1]));
        let tagged_n = config.tagged_entries.next_power_of_two().max(1);
        let comps = config.history_lengths.len();
        let base = Bimodal::new(config.base_entries);
        let base_conf = vec![0u8; base.len()];
        Tage {
            base,
            base_conf,
            tagged: vec![vec![TageEntry::default(); tagged_n]; comps],
            config,
            rng: SimRng::new(seed),
            updates: 0,
        }
    }

    fn base_conf_index(&self, pc: u64) -> usize {
        (crate::history::hash_pc(pc, 0xbcf1) as usize) & (self.base_conf.len() - 1)
    }

    fn tag_bits(&self, comp: usize) -> u32 {
        (self.config.base_tag_bits + comp as u32 / 2).min(15)
    }

    fn index_of(&self, comp: usize, pc: u64, hist: HistoryView<'_>) -> usize {
        let folded = hist.fold(self.config.history_lengths[comp], 0x7163 + comp as u64);
        (hash_pc(pc ^ folded, 0x7a93) as usize) & (self.tagged[comp].len() - 1)
    }

    fn tag_of(&self, comp: usize, pc: u64, hist: HistoryView<'_>) -> u32 {
        let folded = hist.fold(self.config.history_lengths[comp], 0x91b7 + comp as u64);
        (hash_pc(pc ^ folded.rotate_left(21), 0x3d71) as u32) & ((1 << self.tag_bits(comp)) - 1)
    }

    /// (provider component, index) of the longest hit, if any.
    fn provider(&self, pc: u64, hist: HistoryView<'_>) -> Option<(usize, usize)> {
        for comp in (0..self.tagged.len()).rev() {
            let idx = self.index_of(comp, pc, hist);
            let e = &self.tagged[comp][idx];
            if e.valid && e.tag == self.tag_of(comp, pc, hist) {
                return Some((comp, idx));
            }
        }
        None
    }

    /// The alternate prediction: the next-longest hit below `below`, else
    /// the base.
    fn alt_taken(&self, pc: u64, hist: HistoryView<'_>, below: usize) -> bool {
        for comp in (0..below).rev() {
            let idx = self.index_of(comp, pc, hist);
            let e = &self.tagged[comp][idx];
            if e.valid && e.tag == self.tag_of(comp, pc, hist) {
                return e.ctr >= 0;
            }
        }
        self.base.counter(pc) >= 2
    }

    fn allocate(&mut self, provider_comp: Option<usize>, pc: u64, hist: HistoryView<'_>, taken: bool) {
        let start = provider_comp.map(|c| c + 1).unwrap_or(0);
        if start >= self.tagged.len() {
            return;
        }
        // Track the two shortest free slots and the count in place — this
        // runs on every committed-branch update, allocation-free.
        let mut shortest: Option<(usize, usize)> = None;
        let mut second: Option<(usize, usize)> = None;
        let mut free_count = 0usize;
        for comp in start..self.tagged.len() {
            let idx = self.index_of(comp, pc, hist);
            if self.tagged[comp][idx].useful == 0 {
                free_count += 1;
                if shortest.is_none() {
                    shortest = Some((comp, idx));
                } else if second.is_none() {
                    second = Some((comp, idx));
                }
            }
        }
        let Some(shortest) = shortest else {
            for comp in start..self.tagged.len() {
                let idx = self.index_of(comp, pc, hist);
                let e = &mut self.tagged[comp][idx];
                e.useful = e.useful.saturating_sub(1);
            }
            return;
        };
        // Prefer the shortest free slot, occasionally the next one, so
        // allocations spread across components (classic TAGE heuristic).
        let (comp, idx) = if free_count >= 2 && self.rng.one_in(3) {
            second.expect("free_count >= 2")
        } else {
            shortest
        };
        self.tagged[comp][idx] = TageEntry {
            valid: true,
            tag: self.tag_of(comp, pc, hist),
            ctr: if taken { 0 } else { -1 },
            useful: 0,
            conf: 0,
        };
    }
}

impl DirectionPredictor for Tage {
    fn predict(&mut self, pc: u64, hist: HistoryView<'_>) -> BranchPrediction {
        match self.provider(pc, hist) {
            Some((comp, idx)) => {
                let e = &self.tagged[comp][idx];
                // Newly allocated entries (weak counter, never useful) are
                // unreliable: fall back to the alternate prediction.
                let weak_new = (e.ctr == 0 || e.ctr == -1) && e.useful == 0;
                let taken = if weak_new {
                    self.alt_taken(pc, hist, comp)
                } else {
                    e.ctr >= 0
                };
                let confidence = if !weak_new && e.conf == 3 {
                    BranchConfidence::VeryHigh
                } else {
                    BranchConfidence::Medium
                };
                BranchPrediction { taken, confidence }
            }
            None => {
                let c = self.base.counter(pc);
                BranchPrediction {
                    taken: c >= 2,
                    confidence: if self.base_conf[self.base_conf_index(pc)] == 3 {
                        BranchConfidence::VeryHigh
                    } else {
                        BranchConfidence::Medium
                    },
                }
            }
        }
    }

    fn update(&mut self, pc: u64, hist: HistoryView<'_>, taken: bool) {
        self.updates += 1;
        if self.updates.is_multiple_of(USEFUL_RESET_PERIOD) {
            for comp in &mut self.tagged {
                for e in comp.iter_mut() {
                    e.useful >>= 1;
                }
            }
        }
        // Reproduce the fetch-time final prediction for confidence upkeep.
        let final_taken = self.predict(pc, hist).taken;
        let conf_gate = self.rng.one_in(32);
        match self.provider(pc, hist) {
            Some((comp, idx)) => {
                let provider_taken = self.tagged[comp][idx].ctr >= 0;
                let alt = self.alt_taken(pc, hist, comp);
                {
                    let e = &mut self.tagged[comp][idx];
                    // Usefulness tracks "provider beat the alternate".
                    if provider_taken != alt {
                        if provider_taken == taken {
                            e.useful = (e.useful + 1).min(3);
                        } else {
                            e.useful = e.useful.saturating_sub(1);
                        }
                    }
                    // Probabilistic confidence: slow to earn, instant to lose.
                    if final_taken == taken {
                        if conf_gate {
                            e.conf = (e.conf + 1).min(3);
                        }
                    } else {
                        e.conf = 0;
                    }
                    e.ctr = if taken { (e.ctr + 1).min(3) } else { (e.ctr - 1).max(-4) };
                }
                if provider_taken != taken {
                    self.allocate(Some(comp), pc, hist, taken);
                }
            }
            None => {
                let base_taken = self.base.counter(pc) >= 2;
                let bidx = self.base_conf_index(pc);
                if final_taken == taken {
                    if conf_gate {
                        self.base_conf[bidx] = (self.base_conf[bidx] + 1).min(3);
                    }
                } else {
                    self.base_conf[bidx] = 0;
                }
                self.base.update(pc, hist, taken);
                if base_taken != taken {
                    self.allocate(None, pc, hist, taken);
                }
            }
        }
    }

    fn storage_bits(&self) -> u64 {
        let mut bits = self.base.storage_bits() + self.base_conf.len() as u64 * 2;
        for (comp, table) in self.tagged.iter().enumerate() {
            bits += table.len() as u64 * (1 + self.tag_bits(comp) as u64 + 3 + 2 + 2);
        }
        bits
    }

    fn name(&self) -> &'static str {
        "TAGE"
    }
}

impl crate::snapshot::Snapshot for Tage {
    fn snapshot(&self, w: &mut crate::snapshot::SnapWriter) {
        self.base.snapshot(w);
        w.put_usize(self.base_conf.len());
        for &c in &self.base_conf {
            w.put_u8(c);
        }
        w.put_usize(self.tagged.len());
        for comp in &self.tagged {
            w.put_usize(comp.len());
            for e in comp {
                w.put_bool(e.valid);
                w.put_u32(e.tag);
                w.put_i8(e.ctr);
                w.put_u8(e.useful);
                w.put_u8(e.conf);
            }
        }
        self.rng.snapshot(w);
        w.put_u64(self.updates);
    }

    fn restore(
        &mut self,
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<(), crate::snapshot::SnapError> {
        use crate::snapshot::SnapError;
        self.base.restore(r)?;
        if r.get_usize()? != self.base_conf.len() {
            return Err(SnapError::new("tage base_conf size mismatch"));
        }
        for c in &mut self.base_conf {
            *c = r.get_u8()?;
        }
        if r.get_usize()? != self.tagged.len() {
            return Err(SnapError::new("tage component count mismatch"));
        }
        for comp in &mut self.tagged {
            if r.get_usize()? != comp.len() {
                return Err(SnapError::new("tage component size mismatch"));
            }
            for e in comp.iter_mut() {
                e.valid = r.get_bool()?;
                e.tag = r.get_u32()?;
                e.ctr = r.get_i8()?;
                e.useful = r.get_u8()?;
                e.conf = r.get_u8()?;
            }
        }
        self.rng.restore(r)?;
        self.updates = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::BranchHistory;

    /// Runs a synthetic branch stream through TAGE, returning
    /// (mispredicts, very-high-confidence count, vh mispredicts).
    fn run_stream(outcomes: impl Iterator<Item = (u64, bool)>, seed: u64) -> (u64, u64, u64, u64) {
        let mut tage = Tage::paper(seed);
        let mut hist = BranchHistory::new();
        let (mut total, mut mis, mut vh, mut vh_mis) = (0u64, 0u64, 0u64, 0u64);
        for (pc, taken) in outcomes {
            let pos = hist.len();
            let pred = tage.predict(pc, hist.view(pos));
            total += 1;
            if pred.taken != taken {
                mis += 1;
            }
            if pred.confidence == BranchConfidence::VeryHigh {
                vh += 1;
                if pred.taken != taken {
                    vh_mis += 1;
                }
            }
            tage.update(pc, hist.view(pos), taken);
            hist.push(taken);
        }
        (total, mis, vh, vh_mis)
    }

    #[test]
    fn biased_branches_become_very_high_confidence() {
        let stream = (0..20_000u64).map(|_| (0x100, true));
        let (total, mis, vh, vh_mis) = run_stream(stream, 1);
        assert!(mis <= 2, "mispredicts on an always-taken branch: {mis}");
        assert!(vh as f64 / total as f64 > 0.9, "vh fraction = {}", vh as f64 / total as f64);
        assert_eq!(vh_mis, 0);
    }

    #[test]
    fn short_loop_exits_are_learned_through_history() {
        // Inner loop of 8 iterations: branch taken 7×, then not taken.
        // Bimodal alone mispredicts every exit (12.5%); TAGE should learn
        // the pattern via history and get close to zero.
        let stream = (0..80_000u64).map(|i| (0x200, i % 8 != 7));
        let (total, mis, _, _) = run_stream(stream, 2);
        let rate = mis as f64 / total as f64;
        assert!(rate < 0.02, "loop-exit misprediction rate = {rate:.4}");
    }

    #[test]
    fn very_high_confidence_class_is_reliable() {
        // Mix of biased and patterned branches; the VH class must stay
        // under ~1% mispredictions (the paper cites <0.5% for TAGE).
        let stream = (0..200_000u64).flat_map(|i| {
            [
                (0x300, true),             // always taken
                (0x308, i % 16 != 15),     // loop exit every 16
                (0x310, (i / 3) % 2 == 0), // period-6 pattern
            ]
        });
        let (_, _, vh, vh_mis) = run_stream(stream, 3);
        assert!(vh > 100_000, "vh = {vh}");
        let rate = vh_mis as f64 / vh as f64;
        assert!(rate < 0.01, "VH misprediction rate = {rate:.4}");
    }

    #[test]
    fn random_branches_are_not_very_high_confidence() {
        let mut rng = SimRng::new(9);
        let outcomes: Vec<(u64, bool)> =
            (0..50_000).map(|_| (0x400, rng.next_u64() & 1 == 1)).collect();
        let (total, _, vh, _) = run_stream(outcomes.into_iter(), 4);
        assert!(
            (vh as f64 / total as f64) < 0.2,
            "random branch should rarely be VH: {}",
            vh as f64 / total as f64
        );
    }

    #[test]
    fn storage_is_in_the_15k_entry_ballpark() {
        let t = Tage::paper(1);
        let kb = t.storage_bits() as f64 / 8.0 / 1024.0;
        // 4K bimodal + 12×1K tagged ≈ 16K entries, ~25 KB.
        assert!((15.0..40.0).contains(&kb), "TAGE storage = {kb:.1} KB");
    }

    #[test]
    fn rejects_bad_geometry() {
        let cfg = TageConfig {
            base_entries: 64,
            tagged_entries: 64,
            history_lengths: vec![],
            base_tag_bits: 8,
        };
        assert!(std::panic::catch_unwind(|| Tage::new(cfg, 1)).is_err());
    }
}
