//! Branch Target Buffer: 2-way set-associative, LRU (Table 1: "2-way
//! 4K-entry BTB").
//!
//! Stores the target instruction index of taken control µ-ops. Indirect
//! jumps/calls use the stored target as their prediction; direct control
//! µ-ops use it to avoid a fetch-redirect bubble on taken branches.

use crate::history::hash_pc;

#[derive(Clone, Copy, Debug, Default)]
struct BtbEntry {
    valid: bool,
    tag: u32,
    target: u32,
    /// Higher = more recently used (within the set).
    lru: u8,
}

/// Set-associative branch target buffer.
#[derive(Clone, Debug)]
pub struct Btb {
    sets: usize,
    ways: usize,
    entries: Vec<BtbEntry>,
}

impl Btb {
    /// The paper's configuration: 4K entries, 2-way.
    pub fn paper() -> Self {
        Self::new(4096, 2)
    }

    /// Creates a BTB with `entries` total slots in `ways`-way sets.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is 0 or does not divide the (power-of-two rounded)
    /// entry count.
    pub fn new(entries: usize, ways: usize) -> Self {
        assert!(ways > 0);
        let n = entries.next_power_of_two().max(ways);
        assert_eq!(n % ways, 0);
        Btb { sets: n / ways, ways, entries: vec![BtbEntry::default(); n] }
    }

    fn set_of(&self, pc: u64) -> usize {
        (hash_pc(pc, 0xb7b) as usize) % self.sets
    }

    fn tag_of(&self, pc: u64) -> u32 {
        (hash_pc(pc, 0x7b7) >> 13) as u32
    }

    /// Looks up the stored target for `pc`, updating LRU on a hit.
    pub fn lookup(&mut self, pc: u64) -> Option<u32> {
        let set = self.set_of(pc);
        let tag = self.tag_of(pc);
        let base = set * self.ways;
        for w in 0..self.ways {
            let e = self.entries[base + w];
            if e.valid && e.tag == tag {
                for v in 0..self.ways {
                    let x = &mut self.entries[base + v];
                    x.lru = x.lru.saturating_sub(1);
                }
                self.entries[base + w].lru = u8::MAX;
                return Some(e.target);
            }
        }
        None
    }

    /// Inserts or updates the target for `pc`.
    pub fn insert(&mut self, pc: u64, target: u32) {
        let set = self.set_of(pc);
        let tag = self.tag_of(pc);
        let base = set * self.ways;
        // Update on hit.
        for w in 0..self.ways {
            let e = &mut self.entries[base + w];
            if e.valid && e.tag == tag {
                e.target = target;
                e.lru = u8::MAX;
                return;
            }
        }
        // Victim: invalid way, else lowest LRU.
        let mut victim = 0;
        let mut best = u8::MAX;
        for w in 0..self.ways {
            let e = &self.entries[base + w];
            if !e.valid {
                victim = w;
                break;
            }
            if e.lru <= best {
                best = e.lru;
                victim = w;
            }
        }
        for v in 0..self.ways {
            let x = &mut self.entries[base + v];
            x.lru = x.lru.saturating_sub(1);
        }
        self.entries[base + victim] = BtbEntry { valid: true, tag, target, lru: u8::MAX };
    }

    /// Total storage in bits (tag + target + valid + lru per entry).
    pub fn storage_bits(&self) -> u64 {
        self.entries.len() as u64 * (19 + 32 + 1 + 1)
    }
}

impl crate::snapshot::Snapshot for Btb {
    fn snapshot(&self, w: &mut crate::snapshot::SnapWriter) {
        w.put_usize(self.entries.len());
        for e in &self.entries {
            w.put_bool(e.valid);
            w.put_u32(e.tag);
            w.put_u32(e.target);
            w.put_u8(e.lru);
        }
    }

    fn restore(
        &mut self,
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<(), crate::snapshot::SnapError> {
        if r.get_usize()? != self.entries.len() {
            return Err(crate::snapshot::SnapError::new("btb size mismatch"));
        }
        for e in &mut self.entries {
            e.valid = r.get_bool()?;
            e.tag = r.get_u32()?;
            e.target = r.get_u32()?;
            e.lru = r.get_u8()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut btb = Btb::new(64, 2);
        assert_eq!(btb.lookup(0x40), None);
        btb.insert(0x40, 99);
        assert_eq!(btb.lookup(0x40), Some(99));
    }

    #[test]
    fn update_changes_target() {
        let mut btb = Btb::new(64, 2);
        btb.insert(0x40, 1);
        btb.insert(0x40, 2);
        assert_eq!(btb.lookup(0x40), Some(2));
    }

    #[test]
    fn lru_evicts_older_entry_in_full_set() {
        // 1 set × 2 ways: three distinct pcs must evict someone.
        let mut btb = Btb::new(2, 2);
        btb.insert(10, 1);
        btb.insert(20, 2);
        let _ = btb.lookup(10); // make 10 the MRU
        btb.insert(30, 3); // evicts 20
        assert_eq!(btb.lookup(10), Some(1));
        assert_eq!(btb.lookup(30), Some(3));
        assert_eq!(btb.lookup(20), None);
    }

    #[test]
    fn paper_size() {
        let btb = Btb::paper();
        assert_eq!(btb.sets * btb.ways, 4096);
    }
}
