//! Bimodal (2-bit counter) direction predictor — TAGE's base component and
//! a standalone baseline.

use crate::branch::{BranchConfidence, BranchPrediction, DirectionPredictor};
use crate::history::{hash_pc, HistoryView};

/// Direct-mapped table of 2-bit saturating counters (0–3; ≥2 = taken).
#[derive(Clone, Debug)]
pub struct Bimodal {
    counters: Vec<u8>,
}

impl Bimodal {
    /// Creates a bimodal table with `entries` counters (rounded to a power
    /// of two), initialized weakly taken.
    pub fn new(entries: usize) -> Self {
        Bimodal { counters: vec![2; entries.next_power_of_two().max(1)] }
    }

    fn index(&self, pc: u64) -> usize {
        (hash_pc(pc, 0xb1b0) as usize) & (self.counters.len() - 1)
    }

    /// Raw counter value for `pc` (used by TAGE for provider confidence).
    pub fn counter(&self, pc: u64) -> u8 {
        self.counters[self.index(pc)]
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// True if the table has no entries (never, in practice).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }
}

impl DirectionPredictor for Bimodal {
    fn predict(&mut self, pc: u64, _hist: HistoryView<'_>) -> BranchPrediction {
        let c = self.counter(pc);
        BranchPrediction {
            taken: c >= 2,
            confidence: if c == 0 || c == 3 {
                BranchConfidence::VeryHigh
            } else {
                BranchConfidence::Medium
            },
        }
    }

    fn update(&mut self, pc: u64, _hist: HistoryView<'_>, taken: bool) {
        let idx = self.index(pc);
        let c = &mut self.counters[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    fn storage_bits(&self) -> u64 {
        self.counters.len() as u64 * 2
    }

    fn name(&self) -> &'static str {
        "Bimodal"
    }
}

impl crate::snapshot::Snapshot for Bimodal {
    fn snapshot(&self, w: &mut crate::snapshot::SnapWriter) {
        w.put_usize(self.counters.len());
        for &c in &self.counters {
            w.put_u8(c);
        }
    }

    fn restore(
        &mut self,
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<(), crate::snapshot::SnapError> {
        use crate::snapshot::SnapError;
        if r.get_usize()? != self.counters.len() {
            return Err(SnapError::new("bimodal size mismatch"));
        }
        for c in &mut self.counters {
            let v = r.get_u8()?;
            if v > 3 {
                return Err(SnapError::new("bimodal counter out of range"));
            }
            *c = v;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::BranchHistory;

    #[test]
    fn learns_a_biased_branch() {
        let h = BranchHistory::new();
        let mut p = Bimodal::new(256);
        for _ in 0..4 {
            p.update(0x10, h.view(0), false);
        }
        let pred = p.predict(0x10, h.view(0));
        assert!(!pred.taken);
        assert_eq!(pred.confidence, BranchConfidence::VeryHigh);
    }

    #[test]
    fn weak_states_are_medium_confidence() {
        let h = BranchHistory::new();
        let mut p = Bimodal::new(256);
        p.update(0x10, h.view(0), false); // 2 -> 1 (weak not-taken)
        assert_eq!(p.predict(0x10, h.view(0)).confidence, BranchConfidence::Medium);
    }

    #[test]
    fn counters_saturate() {
        let h = BranchHistory::new();
        let mut p = Bimodal::new(4);
        for _ in 0..10 {
            p.update(0x20, h.view(0), true);
        }
        assert_eq!(p.counter(0x20), 3);
        for _ in 0..10 {
            p.update(0x20, h.view(0), false);
        }
        assert_eq!(p.counter(0x20), 0);
    }
}
