//! Branch predictors: TAGE direction prediction with storage-free
//! confidence, a set-associative BTB, and a return-address stack.
//!
//! EOLE's Late Execution offloads *very-high-confidence* conditional
//! branches to the pre-commit stage (§3.3). The confidence estimate comes
//! from Seznec's storage-free scheme (HPCA 2011, the paper's \[30\]):
//! a prediction is very-high-confidence iff the provider counter is
//! saturated, which empirically keeps the misprediction rate of that class
//! well under 1%.

mod bimodal;
mod btb;
mod ras;
mod tage;

pub use bimodal::Bimodal;
pub use btb::Btb;
pub use ras::ReturnStack;
pub use tage::{Tage, TageConfig};

use crate::history::HistoryView;

/// Confidence class of a direction prediction (storage-free estimation).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BranchConfidence {
    /// Provider counter saturated — eligible for Late Execution.
    VeryHigh,
    /// Anything else.
    Medium,
}

/// A direction prediction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BranchPrediction {
    /// Predicted direction.
    pub taken: bool,
    /// Confidence class.
    pub confidence: BranchConfidence,
}

/// Common interface for direction predictors.
pub trait DirectionPredictor {
    /// Predicts the direction of the conditional branch at `pc` under
    /// global history `hist`.
    fn predict(&mut self, pc: u64, hist: HistoryView<'_>) -> BranchPrediction;

    /// Trains with the resolved outcome (called in commit order).
    fn update(&mut self, pc: u64, hist: HistoryView<'_>, taken: bool);

    /// Total storage in bits.
    fn storage_bits(&self) -> u64;

    /// Short display name.
    fn name(&self) -> &'static str;
}
