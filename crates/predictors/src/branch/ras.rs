//! Return Address Stack (Table 1: 32 entries).
//!
//! Circular stack: pushes past capacity overwrite the oldest entry, pops of
//! an empty stack return `None` (the fetch unit then treats the return as a
//! BTB-predicted indirect jump).

/// Circular return-address stack.
#[derive(Clone, Debug)]
pub struct ReturnStack {
    slots: Vec<u32>,
    top: usize,
    depth: usize,
}

impl ReturnStack {
    /// Creates a RAS with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        ReturnStack { slots: vec![0; capacity], top: 0, depth: 0 }
    }

    /// The paper's 32-entry configuration.
    pub fn paper() -> Self {
        Self::new(32)
    }

    /// Pushes a return address (on a call).
    pub fn push(&mut self, ret: u32) {
        self.top = (self.top + 1) % self.slots.len();
        self.slots[self.top] = ret;
        self.depth = (self.depth + 1).min(self.slots.len());
    }

    /// Pops the predicted return address (on a return).
    pub fn pop(&mut self) -> Option<u32> {
        if self.depth == 0 {
            return None;
        }
        let v = self.slots[self.top];
        self.top = (self.top + self.slots.len() - 1) % self.slots.len();
        self.depth -= 1;
        Some(v)
    }

    /// Current number of valid entries.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Storage in bits.
    pub fn storage_bits(&self) -> u64 {
        self.slots.len() as u64 * 32
    }
}

impl crate::snapshot::Snapshot for ReturnStack {
    fn snapshot(&self, w: &mut crate::snapshot::SnapWriter) {
        w.put_usize(self.slots.len());
        for &s in &self.slots {
            w.put_u32(s);
        }
        w.put_usize(self.top);
        w.put_usize(self.depth);
    }

    fn restore(
        &mut self,
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<(), crate::snapshot::SnapError> {
        use crate::snapshot::SnapError;
        if r.get_usize()? != self.slots.len() {
            return Err(SnapError::new("ras size mismatch"));
        }
        for s in &mut self.slots {
            *s = r.get_u32()?;
        }
        let top = r.get_usize()?;
        let depth = r.get_usize()?;
        if top >= self.slots.len() || depth > self.slots.len() {
            return Err(SnapError::new("ras cursor out of range"));
        }
        self.top = top;
        self.depth = depth;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut ras = ReturnStack::new(8);
        ras.push(1);
        ras.push(2);
        ras.push(3);
        assert_eq!(ras.pop(), Some(3));
        assert_eq!(ras.pop(), Some(2));
        assert_eq!(ras.pop(), Some(1));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn overflow_overwrites_oldest() {
        let mut ras = ReturnStack::new(2);
        ras.push(1);
        ras.push(2);
        ras.push(3); // overwrites 1
        assert_eq!(ras.pop(), Some(3));
        assert_eq!(ras.pop(), Some(2));
        // Depth capped at capacity: the overwritten entry is gone.
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn deep_recursion_wraps_gracefully() {
        let mut ras = ReturnStack::paper();
        for i in 0..100u32 {
            ras.push(i);
        }
        assert_eq!(ras.depth(), 32);
        // The 32 most recent returns predict correctly.
        for i in (68..100).rev() {
            assert_eq!(ras.pop(), Some(i));
        }
        assert_eq!(ras.pop(), None);
    }
}
