//! The VTAGE-2DStride hybrid — the predictor the EOLE paper evaluates
//! (§4.2, Table 2).
//!
//! Selection rule: if a *tagged* VTAGE component hits, its prediction is
//! used (context-based predictions dominate when history correlates);
//! otherwise the 2-delta stride prediction is used if its entry hits;
//! otherwise the VTAGE base table provides a last-value-style fallback.
//! Both sides are always trained, so each keeps learning even while the
//! other is selected.

use crate::history::HistoryView;
use crate::value::{StridePredictor, TwoDeltaStride, ValuePrediction, ValuePredictor, Vtage};

/// Hybrid of [`Vtage`] and [`TwoDeltaStride`] with tagged-hit-first
/// selection.
#[derive(Clone, Debug)]
pub struct VtageTwoDeltaStride {
    vtage: Vtage,
    stride: TwoDeltaStride,
}

impl VtageTwoDeltaStride {
    /// The paper's configuration (Table 2): 8192-entry 2D-Stride with full
    /// tags + 8192/6×1024 VTAGE.
    pub fn paper(seed: u64) -> Self {
        VtageTwoDeltaStride {
            vtage: Vtage::paper(seed ^ 0xa5a5),
            stride: TwoDeltaStride::paper(seed ^ 0x5a5a),
        }
    }

    /// Builds a hybrid from explicit components.
    pub fn from_parts(vtage: Vtage, stride: TwoDeltaStride) -> Self {
        VtageTwoDeltaStride { vtage, stride }
    }

    /// Access to the VTAGE side (e.g. for storage reporting).
    pub fn vtage(&self) -> &Vtage {
        &self.vtage
    }

    /// Access to the 2D-Stride side.
    pub fn stride(&self) -> &TwoDeltaStride {
        &self.stride
    }
}

impl ValuePredictor for VtageTwoDeltaStride {
    fn predict(&mut self, pc: u64, hist: HistoryView<'_>) -> Option<ValuePrediction> {
        // Query both so the stride side tracks its in-flight instances
        // regardless of which component is selected.
        let vtage_tagged_hit = self.vtage.tagged_hit(pc, hist);
        let v = self.vtage.predict(pc, hist);
        let s = self.stride.predict(pc, hist);
        // Selection: the more confident component wins; on a tie, a tagged
        // VTAGE hit beats the stride side (context dominates), which in turn
        // beats the last-value-style VTAGE base.
        match (v, s) {
            (Some(v), Some(s)) => {
                if v.level > s.level || (v.level == s.level && vtage_tagged_hit) {
                    Some(v)
                } else {
                    Some(s)
                }
            }
            (v, s) => v.or(s),
        }
    }

    fn train(&mut self, pc: u64, hist: HistoryView<'_>, actual: u64) {
        self.vtage.train(pc, hist, actual);
        self.stride.train(pc, hist, actual);
    }

    fn squash(&mut self, pc: u64) {
        self.vtage.squash(pc);
        self.stride.squash(pc);
    }

    fn storage_bits(&self) -> u64 {
        self.vtage.storage_bits() + self.stride.storage_bits()
    }

    fn name(&self) -> &'static str {
        "VTAGE-2DStride"
    }
}

impl crate::snapshot::Snapshot for VtageTwoDeltaStride {
    fn snapshot(&self, w: &mut crate::snapshot::SnapWriter) {
        self.vtage.snapshot(w);
        self.stride.snapshot(w);
    }

    fn restore(
        &mut self,
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<(), crate::snapshot::SnapError> {
        self.vtage.restore(r)?;
        self.stride.restore(r)
    }
}

/// A simple stride-only hybrid stand-in used in ablations (same interface,
/// no context component).
#[derive(Clone, Debug)]
pub struct StrideOnly(pub StridePredictor);

impl ValuePredictor for StrideOnly {
    fn predict(&mut self, pc: u64, hist: HistoryView<'_>) -> Option<ValuePrediction> {
        self.0.predict(pc, hist)
    }
    fn train(&mut self, pc: u64, hist: HistoryView<'_>, actual: u64) {
        self.0.train(pc, hist, actual);
    }
    fn squash(&mut self, pc: u64) {
        self.0.squash(pc);
    }
    fn storage_bits(&self) -> u64 {
        self.0.storage_bits()
    }
    fn name(&self) -> &'static str {
        "Stride-only"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::BranchHistory;
    use crate::value::evaluate_stream;

    #[test]
    fn strided_stream_is_covered_by_the_stride_side() {
        let hist = BranchHistory::new();
        let mut p = VtageTwoDeltaStride::paper(1);
        let stream = (0..6_000u64).map(|i| (0x10, 0u32, 24 * i));
        let s = evaluate_stream(&mut p, &hist, stream);
        assert!(s.confident > 3_000, "confident = {}", s.confident);
        assert_eq!(s.confident, s.confident_correct);
    }

    #[test]
    fn history_correlated_stream_is_covered_by_vtage() {
        let mut hist = BranchHistory::new();
        let mut p = VtageTwoDeltaStride::paper(2);
        let total = 30_000;
        let mut late_correct = 0u64;
        for i in 0..total {
            let taken = (i / 5) % 2 == 0;
            hist.push(taken);
            let pos = hist.len() as u32;
            let actual = if taken { 1111 } else { 2222 };
            let pred = p.predict(0x20, hist.view(pos as usize)).unwrap();
            if i > total / 2 && pred.value == actual {
                late_correct += 1;
            }
            p.train(0x20, hist.view(pos as usize), actual);
        }
        let rate = late_correct as f64 / (total / 2 - 1) as f64;
        assert!(rate > 0.8, "hybrid accuracy on correlated stream = {rate:.3}");
    }

    #[test]
    fn constant_values_are_covered_either_way() {
        let hist = BranchHistory::new();
        let mut p = VtageTwoDeltaStride::paper(3);
        let stream = (0..5_000u64).map(|_| (0x30, 0u32, 777));
        let s = evaluate_stream(&mut p, &hist, stream);
        assert!(s.confident > 2_000);
        assert_eq!(s.confident, s.confident_correct);
    }

    #[test]
    fn storage_sums_both_components() {
        let p = VtageTwoDeltaStride::paper(1);
        assert_eq!(
            p.storage_bits(),
            p.vtage().storage_bits() + p.stride().storage_bits()
        );
        // Table 2 total ≈ 252 + 133 KB; assert the right order of magnitude.
        let kb = p.storage_bits() as f64 / 8.0 / 1024.0;
        assert!((300.0..450.0).contains(&kb), "hybrid storage = {kb:.1} KB");
    }

    #[test]
    fn squash_keeps_inflight_balanced() {
        let hist = BranchHistory::new();
        let mut p = VtageTwoDeltaStride::paper(4);
        for i in 0..10u64 {
            p.train(0x40, hist.view(0), i * 8);
        }
        let _ = p.predict(0x40, hist.view(0));
        let _ = p.predict(0x40, hist.view(0));
        p.squash(0x40);
        p.squash(0x40);
        assert_eq!(p.stride().inflight(0x40), 0);
    }
}
