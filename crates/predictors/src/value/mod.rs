//! Value predictors.
//!
//! The paper's taxonomy (§2, after Sazeides & Smith) splits predictors into
//! *computational* (apply a function to previous values: [`LastValue`],
//! [`StridePredictor`], [`TwoDeltaStride`]) and *context-based* (recognize
//! patterns in the value history: [`Fcm`], [`Vtage`]). The EOLE evaluation
//! uses the [`VtageTwoDeltaStride`] hybrid with Forward Probabilistic
//! Counter confidence.
//!
//! ## Protocols
//!
//! There are two interfaces at two altitudes:
//!
//! * **The block protocol** ([`BlockVp`], module [`block`]) is what the
//!   timing core drives: [`BlockVp::predict`] at **fetch** (fetch-block-
//!   granular access, speculative-window registration), exactly one of
//!   [`BlockVp::commit`] at **retire** or a covering
//!   [`BlockVp::squash_from`] on a pipeline squash. The native backend
//!   is [`DVtage`]; the five per-instruction predictors ride behind the
//!   legacy adapter.
//! * **The per-instruction protocol** ([`ValuePredictor`]) survives for
//!   offline evaluation ([`evaluate_stream`], the predictor microbench,
//!   the `predictor_showdown` example) and as the adapter target:
//!   `predict` at fetch, exactly one of `train` at commit or `squash`.
//!
//! A prediction is *used* by the pipeline only when `confident` is true
//! (saturated FPC), per §4.2.

mod any;
mod block;
mod dvtage;
mod fcm;
mod hybrid;
mod last_value;
mod stride;
mod vtage;

pub use any::AnyValuePredictor;
pub use block::{BlockBackend, BlockParams, BlockQuery, BlockVp};
pub use dvtage::{DVtage, DVtageConfig};
pub use fcm::Fcm;
pub use hybrid::{StrideOnly, VtageTwoDeltaStride};
pub use last_value::LastValue;
pub use stride::{StridePredictor, TwoDeltaStride};
pub use vtage::{Vtage, VtageConfig};

use crate::history::HistoryView;

/// A value prediction produced at fetch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ValuePrediction {
    /// The predicted 64-bit result.
    pub value: u64,
    /// True iff the confidence counter is saturated — only then may the
    /// pipeline write the prediction into the PRF.
    pub confident: bool,
    /// Raw confidence level (0–7); hybrids select the stronger component.
    pub level: u8,
}

impl ValuePrediction {
    /// Builds a prediction from a value and its FPC counter.
    pub fn from_conf(value: u64, conf: crate::fpc::Fpc) -> Self {
        ValuePrediction { value, confident: conf.is_saturated(), level: conf.level() }
    }
}

/// Common interface of all value predictors.
pub trait ValuePredictor {
    /// Predicts the result of the µ-op at `pc`, fetched with branch history
    /// `hist`. Returns `None` when the predictor has no entry. May register
    /// an in-flight instance which must later be retired by `train` or
    /// `squash`.
    fn predict(&mut self, pc: u64, hist: HistoryView<'_>) -> Option<ValuePrediction>;

    /// Trains with the architectural result at commit; retires the oldest
    /// in-flight instance for `pc` if one was registered.
    fn train(&mut self, pc: u64, hist: HistoryView<'_>, actual: u64);

    /// Drops one in-flight instance for `pc` after a pipeline squash.
    fn squash(&mut self, pc: u64);

    /// Total storage in bits (for Table 2).
    fn storage_bits(&self) -> u64;

    /// Short display name.
    fn name(&self) -> &'static str;
}

/// Offline accuracy/coverage numbers from [`evaluate_stream`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// µ-ops offered to the predictor.
    pub attempted: u64,
    /// Predictions returned (entry present).
    pub predicted: u64,
    /// Predictions with saturated confidence (would be used).
    pub confident: u64,
    /// Confident predictions that matched the actual value.
    pub confident_correct: u64,
    /// All predictions that matched (regardless of confidence).
    pub correct: u64,
}

impl EvalStats {
    /// Coverage: fraction of attempts that produced a *usable* prediction.
    pub fn coverage(&self) -> f64 {
        if self.attempted == 0 {
            0.0
        } else {
            self.confident as f64 / self.attempted as f64
        }
    }

    /// Accuracy of used predictions (the number the paper drives below
    /// ~1 misprediction per 1K with FPC).
    pub fn accuracy(&self) -> f64 {
        if self.confident == 0 {
            1.0
        } else {
            self.confident_correct as f64 / self.confident as f64
        }
    }
}

/// Replays `(pc, history position, actual value)` triples through a
/// predictor with fetch immediately followed by commit (no overlap), for
/// offline predictor comparisons (see the `predictor_showdown` example).
pub fn evaluate_stream(
    predictor: &mut dyn ValuePredictor,
    history: &crate::history::BranchHistory,
    stream: impl IntoIterator<Item = (u64, u32, u64)>,
) -> EvalStats {
    let mut stats = EvalStats::default();
    for (pc, pos, actual) in stream {
        let view = history.view(pos as usize);
        stats.attempted += 1;
        if let Some(p) = predictor.predict(pc, view) {
            stats.predicted += 1;
            if p.value == actual {
                stats.correct += 1;
            }
            if p.confident {
                stats.confident += 1;
                if p.value == actual {
                    stats.confident_correct += 1;
                }
            }
        }
        predictor.train(pc, view, actual);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::BranchHistory;

    #[test]
    fn eval_stats_ratios() {
        let s = EvalStats {
            attempted: 100,
            predicted: 80,
            confident: 50,
            confident_correct: 49,
            correct: 70,
        };
        assert!((s.coverage() - 0.5).abs() < 1e-12);
        assert!((s.accuracy() - 0.98).abs() < 1e-12);
        assert_eq!(EvalStats::default().accuracy(), 1.0);
        assert_eq!(EvalStats::default().coverage(), 0.0);
    }

    #[test]
    fn evaluate_stream_counts_constant_stream() {
        let hist = BranchHistory::new();
        let mut lvp = LastValue::new(256, 0xbeef);
        let stream = (0..500u64).map(|_| (0x40u64, 0u32, 7u64));
        let s = evaluate_stream(&mut lvp, &hist, stream);
        assert_eq!(s.attempted, 500);
        // After the first training, every prediction is 7.
        assert!(s.correct >= 498);
        // FPC eventually saturates and stays correct.
        assert!(s.confident > 0);
        assert_eq!(s.confident, s.confident_correct);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::history::BranchHistory;
    use proptest::prelude::*;

    fn any_predictor(kind: u8, seed: u64) -> Box<dyn ValuePredictor> {
        match kind % 7 {
            0 => Box::new(LastValue::new(256, seed)),
            1 => Box::new(StridePredictor::new(256, seed)),
            2 => Box::new(TwoDeltaStride::new(256, seed)),
            3 => Box::new(Fcm::new(256, 256, seed)),
            4 => Box::new(Vtage::new(
                VtageConfig {
                    base_entries: 256,
                    tagged_entries: 64,
                    history_lengths: vec![2, 4, 8],
                    base_tag_bits: 8,
                },
                seed,
            )),
            5 => Box::new(DVtage::new(
                DVtageConfig {
                    lvt_entries: 256,
                    base_entries: 256,
                    tagged_entries: 64,
                    ..DVtageConfig::paper(1, 1)
                },
                seed,
            )),
            _ => Box::new(VtageTwoDeltaStride::paper(seed)),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Any predictor survives any interleaving of predict/train/squash
        /// (the pipeline's protocol under squash storms) without panicking,
        /// and stays deterministic.
        #[test]
        fn protocol_fuzz_is_total_and_deterministic(
            kind: u8,
            seed in 1u64..u64::MAX,
            script in proptest::collection::vec((0u8..3, 0u64..32, any::<u64>()), 1..300),
            outcomes in proptest::collection::vec(any::<bool>(), 0..64),
        ) {
            let hist = BranchHistory::from_outcomes(&outcomes);
            let run = || {
                let mut p = any_predictor(kind, seed);
                let mut log = Vec::new();
                for (op, pcx, value) in &script {
                    let pc = pcx * 4;
                    let view = hist.view(outcomes.len().min(*value as usize % (outcomes.len() + 1)));
                    match op {
                        0 => log.push(p.predict(pc, view).map(|x| (x.value, x.confident))),
                        1 => p.train(pc, view, *value),
                        _ => p.squash(pc),
                    }
                }
                log
            };
            prop_assert_eq!(run(), run());
        }

        /// Confident predictions on a perfectly strided single-pc stream
        /// are never wrong, for every computational predictor.
        #[test]
        fn confident_never_wrong_on_pure_stride(
            kind in prop::sample::select(vec![1u8, 2, 5, 6]),
            stride in -1000i64..1000,
            start: u64,
        ) {
            let hist = BranchHistory::new();
            let mut p = any_predictor(kind, 7);
            let mut wrong = 0u64;
            for i in 0..3000u64 {
                let actual = start.wrapping_add((stride.wrapping_mul(i as i64)) as u64);
                if let Some(pred) = p.predict(0x40, hist.view(0)) {
                    if pred.confident && pred.value != actual {
                        wrong += 1;
                    }
                }
                p.train(0x40, hist.view(0), actual);
            }
            prop_assert_eq!(wrong, 0);
        }
    }
}
