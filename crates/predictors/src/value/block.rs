//! The block-based prediction front (BeBoP): fetch-block-granular
//! predictor access plus the speculative in-flight window.
//!
//! The EOLE paper argues value prediction only becomes implementable
//! once the predictor is *cheap to access*: one read per fetch block
//! instead of one per instruction, banked storage, and a bounded amount
//! of in-flight speculation the hardware can actually checkpoint. This
//! module is that subsystem. The timing core no longer talks to a
//! per-instruction [`ValuePredictor`]; it talks to a [`BlockVp`]:
//!
//! * [`BlockVp::predict`] at **fetch** — tracks fetch-block transitions
//!   (`new_block` = a real predictor read; later µ-ops of the same block
//!   in the same cycle ride the same read), enforces the speculative-
//!   window bound (a full window refuses the query: `accepted == false`,
//!   and the µ-op travels unpredicted), and registers the in-flight
//!   instance.
//! * [`BlockVp::commit`] at **retire** — pops the oldest in-flight
//!   instance and trains the backend with the architectural result.
//! * [`BlockVp::squash_from`] on a pipeline squash — drops every
//!   in-flight instance with sequence ≥ the cut, youngest first. For the
//!   D-VTAGE backend that *is* the whole rollback (its tables only hold
//!   committed state); legacy backends get their per-pc `squash` calls,
//!   in exactly the order the pipeline used to issue them.
//!
//! The window also supplies **speculative last values**: when several
//! instances of one static µ-op are in flight, D-VTAGE anchors its delta
//! on the youngest in-flight *predicted* value instead of the committed
//! LVT entry — the paper's "conventional value predictors need to track
//! inflight predictions", done once here instead of inside every
//! predictor.
//!
//! With the behavior-neutral defaults (`block_size` 1, unbounded
//! window) and a legacy backend, every backend call this module makes is
//! identical — same call, same order, same RNG stream — to what the
//! pipeline made before the refactor; the 209 pre-refactor golden
//! fingerprints pin that.

use std::collections::{HashMap, VecDeque};

use crate::history::HistoryView;
use crate::value::{AnyValuePredictor, DVtage, ValuePrediction, ValuePredictor};

/// Bytes per µ-op in trace addresses.
const INST_BYTES: u64 = 4;

/// Shape of the block-based front: fetch-block size, storage banks, and
/// the speculative-window bound (mirrors `VpConfig` in `eole-core`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockParams {
    /// µ-ops per fetch block (power of two; 1 = per-instruction access).
    pub block_size: usize,
    /// Predictor storage banks (power of two).
    pub banks: usize,
    /// Maximum in-flight (predicted, not yet retired) µ-ops; `None`
    /// models an unbounded window (the pre-BeBoP idealization).
    pub spec_window: Option<usize>,
}

impl Default for BlockParams {
    fn default() -> Self {
        BlockParams { block_size: 1, banks: 1, spec_window: None }
    }
}

/// The storage behind a [`BlockVp`].
#[derive(Clone, Debug)]
pub enum BlockBackend {
    /// One of the five per-instruction predictors behind the block
    /// adapter (they keep their own in-flight tracking; the window only
    /// replays their `squash` calls).
    Legacy(AnyValuePredictor),
    /// The native block-based D-VTAGE (speculative last values from the
    /// window).
    DVtage(DVtage),
}

/// One in-flight instance: registered at fetch, retired at commit or
/// dropped at squash.
#[derive(Clone, Copy, Debug)]
struct SpecEntry {
    seq: u64,
    pc: u64,
    /// The `spec_last` index entry this instance shadowed at push time —
    /// `(seq, value)` of the previous youngest instance of the same pc,
    /// or `None` if this was the only one. Restored on a squash pop, so
    /// window rollback keeps the O(1) index exact without a scan.
    prev: Option<(u64, Option<u64>)>,
}

/// Outcome of one fetch-time query.
#[derive(Clone, Copy, Debug)]
pub struct BlockQuery {
    /// The prediction, if the backend produced one.
    pub pred: Option<ValuePrediction>,
    /// False iff the speculative window was full: the µ-op was *not*
    /// registered and must not be committed or squashed against the
    /// predictor.
    pub accepted: bool,
    /// True iff this query opened a new (cycle, fetch block) — i.e. a
    /// real predictor read; `false` rides an already-charged read.
    pub new_block: bool,
}

/// The block-based value-prediction subsystem the timing core owns.
#[derive(Clone, Debug)]
pub struct BlockVp {
    backend: BlockBackend,
    params: BlockParams,
    window: VecDeque<SpecEntry>,
    /// Per-pc index of the *youngest* in-flight instance: pc → `(seq,
    /// predicted value)`. Replaces the old O(window) backward scan in
    /// [`BlockVp::predict`] with an O(1) probe; kept exact across
    /// push/commit/squash via the `prev` links on [`SpecEntry`].
    /// Pre-sized to the window capacity, so steady-state inserts never
    /// rehash (the zero-allocation contract).
    spec_last: HashMap<u64, (u64, Option<u64>)>,
    /// Last (cycle, block) the predictor was read for.
    last_access: Option<(u64, u64)>,
}

impl BlockVp {
    /// Builds the subsystem. `window_hint` pre-sizes the in-flight
    /// window (front-end queue + ROB capacity) so steady-state pushes
    /// never reallocate (the zero-allocation contract of `PERF.md`).
    pub fn new(backend: BlockBackend, params: BlockParams, window_hint: usize) -> Self {
        let cap = params.spec_window.unwrap_or(window_hint).max(1);
        BlockVp {
            backend,
            params,
            window: VecDeque::with_capacity(cap + 1),
            spec_last: HashMap::with_capacity(cap + 1),
            last_access: None,
        }
    }

    /// The configured shape.
    pub fn params(&self) -> BlockParams {
        self.params
    }

    /// In-flight instances currently registered.
    pub fn inflight(&self) -> usize {
        self.window.len()
    }

    /// The fetch-block address of a µ-op address.
    #[inline]
    fn block_pc(&self, pc: u64) -> u64 {
        pc & !(self.params.block_size as u64 * INST_BYTES - 1)
    }

    /// Fetch-time query for the µ-op `(seq, pc)` fetched at `cycle`.
    pub fn predict(
        &mut self,
        cycle: u64,
        seq: u64,
        pc: u64,
        hist: HistoryView<'_>,
    ) -> BlockQuery {
        // A refused query performs no predictor access: it must neither
        // charge a block read nor consume the (cycle, block) read credit
        // an accepted µ-op of the same block would otherwise ride.
        if let Some(cap) = self.params.spec_window {
            if self.window.len() >= cap {
                return BlockQuery { pred: None, accepted: false, new_block: false };
            }
        }
        let bpc = self.block_pc(pc);
        let new_block = self.last_access != Some((cycle, bpc));
        if new_block {
            self.last_access = Some((cycle, bpc));
        }
        let pred = match &mut self.backend {
            BlockBackend::Legacy(p) => p.predict(pc, hist),
            BlockBackend::DVtage(d) => {
                // Youngest in-flight instance of the same static µ-op
                // anchors the speculative delta chain — one index probe,
                // not a backward window scan.
                let spec_last = self.spec_last.get(&pc).and_then(|(_, v)| *v);
                d.predict_spec(pc, hist, spec_last)
            }
        };
        let value = pred.map(|p| p.value);
        let prev = self.spec_last.insert(pc, (seq, value));
        self.window.push_back(SpecEntry { seq, pc, prev });
        BlockQuery { pred, accepted: true, new_block }
    }

    /// Retires the oldest in-flight instance (which must be `seq`; the
    /// pipeline commits registered µ-ops in program order) and trains the
    /// backend with the architectural result.
    pub fn commit(&mut self, seq: u64, pc: u64, hist: HistoryView<'_>, actual: u64) {
        let front = self.window.pop_front();
        debug_assert!(
            front.is_some_and(|e| e.seq == seq && e.pc == pc),
            "commit of seq {seq} does not match the window head {front:?}"
        );
        // The index owner for a pc is its youngest instance; the retiring
        // oldest instance owns it only when it is the *sole* one in
        // flight — then the entry dies with it.
        if self.spec_last.get(&pc).is_some_and(|(s, _)| *s == seq) {
            self.spec_last.remove(&pc);
        }
        match &mut self.backend {
            BlockBackend::Legacy(p) => p.train(pc, hist, actual),
            BlockBackend::DVtage(d) => d.train_commit(pc, hist, actual),
        }
    }

    /// Drops every in-flight instance with sequence ≥ `first_bad`,
    /// youngest first — the complete speculation rollback.
    pub fn squash_from(&mut self, first_bad: u64) {
        while let Some(back) = self.window.back() {
            if back.seq < first_bad {
                break;
            }
            let e = self.window.pop_back().expect("non-empty");
            // A popped instance is the youngest of its pc (anything
            // younger was popped before it), so it owns the index entry.
            // Restore the instance it shadowed — still in flight iff its
            // seq has not slid past the window head (the window never
            // holds two instances of one pc with the shadowed one
            // squashed first: squashes pop youngest-first). Seqs are
            // strictly increasing across the window even with post-squash
            // reuse, so the head comparison is exact.
            match e.prev {
                Some((pseq, pval))
                    if self.window.front().is_some_and(|f| f.seq <= pseq) =>
                {
                    self.spec_last.insert(e.pc, (pseq, pval));
                }
                _ => {
                    self.spec_last.remove(&e.pc);
                }
            }
            if let BlockBackend::Legacy(p) = &mut self.backend {
                p.squash(e.pc);
            }
        }
    }

    /// Total predictor storage in bits.
    pub fn storage_bits(&self) -> u64 {
        match &self.backend {
            BlockBackend::Legacy(p) => p.storage_bits(),
            BlockBackend::DVtage(d) => d.storage_bits(),
        }
    }

    /// Short display name of the backend.
    pub fn name(&self) -> &'static str {
        match &self.backend {
            BlockBackend::Legacy(p) => p.name(),
            BlockBackend::DVtage(d) => d.name(),
        }
    }
}

impl crate::snapshot::Snapshot for BlockVp {
    fn snapshot(&self, w: &mut crate::snapshot::SnapWriter) {
        // Warm-state capture happens at a drained boundary (functional
        // warmup commits every instance it predicts), so the speculative
        // window carries no state worth serializing. The count is written
        // so a capture taken mid-flight is rejected on restore rather
        // than silently losing the window.
        debug_assert!(self.window.is_empty(), "warm capture with in-flight instances");
        w.put_usize(self.window.len());
        match &self.backend {
            BlockBackend::Legacy(p) => {
                w.put_u8(0);
                p.snapshot(w);
            }
            BlockBackend::DVtage(d) => {
                w.put_u8(1);
                d.snapshot(w);
            }
        }
        match self.last_access {
            None => w.put_bool(false),
            Some((cycle, bpc)) => {
                w.put_bool(true);
                w.put_u64(cycle);
                w.put_u64(bpc);
            }
        }
    }

    fn restore(
        &mut self,
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<(), crate::snapshot::SnapError> {
        use crate::snapshot::SnapError;
        if r.get_usize()? != 0 {
            return Err(SnapError::new("warm snapshot with in-flight window"));
        }
        self.window.clear();
        self.spec_last.clear();
        let tag = r.get_u8()?;
        match (&mut self.backend, tag) {
            (BlockBackend::Legacy(p), 0) => p.restore(r)?,
            (BlockBackend::DVtage(d), 1) => d.restore(r)?,
            _ => return Err(SnapError::new("vp backend kind mismatch")),
        }
        self.last_access = if r.get_bool()? {
            Some((r.get_u64()?, r.get_u64()?))
        } else {
            None
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::BranchHistory;
    use crate::value::{DVtageConfig, TwoDeltaStride};

    fn legacy(seed: u64) -> BlockVp {
        BlockVp::new(
            BlockBackend::Legacy(TwoDeltaStride::new(64, seed).into()),
            BlockParams::default(),
            256,
        )
    }

    fn dvtage(params: BlockParams, seed: u64) -> BlockVp {
        BlockVp::new(
            BlockBackend::DVtage(DVtage::new(
                DVtageConfig::paper(params.block_size, params.banks),
                seed,
            )),
            params,
            256,
        )
    }

    /// The block adapter over a legacy predictor makes exactly the same
    /// predict/train/squash calls the pipeline used to make directly.
    #[test]
    fn legacy_adapter_is_call_for_call_identical() {
        let hist = BranchHistory::new();
        let mut direct = TwoDeltaStride::new(64, 9);
        let mut block = legacy(9);
        let mut seq = 0u64;
        for i in 0..2_000u64 {
            let v = hist.view(0);
            let a = direct.predict(0x40, v);
            let q = block.predict(i, seq, 0x40, v);
            assert!(q.accepted);
            assert_eq!(a.map(|p| (p.value, p.confident)), q.pred.map(|p| (p.value, p.confident)));
            if i % 5 == 4 {
                // Squash the in-flight instance instead of committing it.
                direct.squash(0x40);
                block.squash_from(seq);
            } else {
                direct.train(0x40, v, i * 8);
                block.commit(seq, 0x40, v, i * 8);
                seq += 1;
            }
        }
    }

    /// D-VTAGE in-flight instances chain off speculative last values and
    /// a squash rolls the chain back to committed state.
    #[test]
    fn speculative_chain_rolls_back_on_squash() {
        let hist = BranchHistory::new();
        let mut vp = dvtage(BlockParams::default(), 5);
        let v = hist.view(0);
        for i in 0..3_000u64 {
            let q = vp.predict(i, i, 0x40, v);
            assert!(q.accepted);
            vp.commit(i, 0x40, v, 8 * i);
        }
        // Three overlapping instances: predictions chain +8 each.
        let a = vp.predict(3_000, 3_000, 0x40, v).pred.unwrap();
        let b = vp.predict(3_000, 3_001, 0x40, v).pred.unwrap();
        let c = vp.predict(3_001, 3_002, 0x40, v).pred.unwrap();
        assert_eq!(b.value, a.value.wrapping_add(8));
        assert_eq!(c.value, b.value.wrapping_add(8));
        // Squash all three: the next prediction re-anchors on committed
        // state and equals the first one again.
        vp.squash_from(3_000);
        assert_eq!(vp.inflight(), 0);
        let again = vp.predict(3_002, 3_000, 0x40, v).pred.unwrap();
        assert_eq!(again.value, a.value);
    }

    /// A bounded speculative window refuses queries once full; commits
    /// and squashes free slots.
    #[test]
    fn bounded_window_refuses_and_recovers() {
        let hist = BranchHistory::new();
        let mut vp = dvtage(
            BlockParams { block_size: 1, banks: 1, spec_window: Some(2) },
            5,
        );
        let v = hist.view(0);
        assert!(vp.predict(0, 0, 0x40, v).accepted);
        assert!(vp.predict(0, 1, 0x44, v).accepted);
        let refused = vp.predict(0, 2, 0x48, v);
        assert!(!refused.accepted);
        assert!(refused.pred.is_none());
        assert_eq!(vp.inflight(), 2);
        vp.commit(0, 0x40, v, 1);
        assert!(vp.predict(1, 2, 0x48, v).accepted, "commit freed a slot");
        vp.squash_from(1);
        assert_eq!(vp.inflight(), 0, "squash dropped seqs 1 and 2");
    }

    /// Block-read accounting: µ-ops of one fetch block in one cycle
    /// charge a single read; a new cycle or a new block charges again.
    #[test]
    fn block_reads_are_charged_per_cycle_per_block() {
        let hist = BranchHistory::new();
        let mut vp = dvtage(
            BlockParams { block_size: 4, banks: 1, spec_window: None },
            5,
        );
        let v = hist.view(0);
        // Same 4-µ-op block (addresses 0x40..0x50), same cycle.
        assert!(vp.predict(7, 0, 0x40, v).new_block);
        assert!(!vp.predict(7, 1, 0x44, v).new_block);
        assert!(!vp.predict(7, 2, 0x48, v).new_block);
        // Next block in the same cycle: a new read.
        assert!(vp.predict(7, 3, 0x50, v).new_block);
        // Same block again but a later cycle: a new read.
        assert!(vp.predict(8, 4, 0x40, v).new_block);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::history::BranchHistory;
    use crate::value::DVtageConfig;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Replays only the *committed prefix* of a script through a
        /// fresh D-VTAGE and asserts full state equality with the
        /// speculated-over instance — the rollback contract of the
        /// speculative window: predict never mutates the tables, squash
        /// never touches them, so after any interleaving the predictor
        /// state is exactly the from-scratch replay of its committed
        /// trains.
        #[test]
        fn dvtage_rollback_equals_committed_prefix_replay(
            seed in 1u64..u64::MAX,
            block_size in prop::sample::select(vec![1usize, 2, 4]),
            script in proptest::collection::vec(
                (0u8..8, 0u64..24, any::<u64>()), 1..400),
            outcomes in proptest::collection::vec(any::<bool>(), 0..48),
        ) {
            let hist = BranchHistory::from_outcomes(&outcomes);
            let params = BlockParams { block_size, banks: 1, spec_window: Some(48) };
            let cfg = DVtageConfig {
                lvt_entries: 64,
                base_entries: 64,
                tagged_entries: 16,
                ..DVtageConfig::paper(block_size, 1)
            };
            let mut live = BlockVp::new(
                BlockBackend::DVtage(DVtage::new(cfg.clone(), seed)), params, 64);
            // The committed prefix: every (pc, actual) pair that reached
            // commit, in order.
            let mut committed: Vec<(u64, usize, u64)> = Vec::new();
            let mut inflight: Vec<(u64, u64)> = Vec::new(); // (seq, pc)
            let mut next_seq = 0u64;
            for (op, pcx, value) in &script {
                let pc = pcx * 4;
                let pos = outcomes.len().min(*value as usize % (outcomes.len() + 1));
                let view = hist.view(pos);
                match op {
                    // predict (5/8 of ops: keep the window busy)
                    0..=4 => {
                        if live.predict(next_seq, next_seq, pc, view).accepted {
                            inflight.push((next_seq, pc));
                        }
                        next_seq += 1;
                    }
                    // commit the oldest in-flight instance
                    5..=6 => {
                        if !inflight.is_empty() {
                            let (seq, pc) = inflight.remove(0);
                            live.commit(seq, pc, view, *value);
                            committed.push((pc, pos, *value));
                        }
                    }
                    // squash the youngest half of the window
                    _ => {
                        if !inflight.is_empty() {
                            let cut = inflight[inflight.len() / 2].0;
                            live.squash_from(cut);
                            inflight.retain(|(s, _)| *s < cut);
                        }
                    }
                }
            }
            // Drain: squash everything still in flight.
            live.squash_from(0);
            // Reference: a fresh predictor trained on the committed
            // prefix alone.
            let mut replay = DVtage::new(cfg, seed);
            for (pc, pos, value) in &committed {
                replay.train_commit(*pc, hist.view(*pos), *value);
            }
            // Full state equality (tables, confidence, usefulness, RNG).
            let BlockBackend::DVtage(live_d) = &live.backend else { unreachable!() };
            prop_assert_eq!(live_d, &replay);
        }
    }
}
