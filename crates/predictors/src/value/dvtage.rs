//! D-VTAGE — the Differential Value TAGE predictor behind BeBoP
//! (Perais & Seznec, "BeBoP: Practical block-based value prediction",
//! HPCA 2015 — the follow-on to the EOLE paper's VTAGE-2DStride hybrid).
//!
//! Three ideas make it the *cost-aware* realization of the hybrid:
//!
//! 1. **Differential storage.** Tagged components store narrow *deltas*
//!    (`delta_bits` wide, 16 by default) against a Last Value Table (LVT)
//!    instead of full 64-bit values — most of the hybrid's 385 KB is
//!    64-bit values and full tags, so the same behavior fits in a
//!    fraction of the storage. The base delta table doubles as a stride
//!    predictor (delta learned per static µ-op, no history), so D-VTAGE
//!    subsumes both halves of the hybrid in one structure.
//! 2. **Block-based organization (BeBoP).** Every table is indexed and
//!    tagged by *fetch-block* address; an entry covers `block_size`
//!    µ-op slots and carries **one** tag and one usefulness counter for
//!    the whole block — amortizing tag storage and, at fetch, letting
//!    one read per block serve the whole fetch group (the access-count
//!    story the EOLE paper's §4.2 asks for).
//! 3. **Speculative last values.** Computing `last + delta` off the
//!    *committed* last value is wrong whenever several instances of the
//!    same µ-op are in flight. The [`BlockVp`](super::BlockVp) window
//!    feeds the youngest in-flight predicted value in as `spec_last`;
//!    [`DVtage::predict_spec`] itself never mutates anything, so squash
//!    recovery is exactly "drop the window entries" — the tables only
//!    ever learn from committed state (the rollback property pinned by
//!    the compat-proptest in `value/block.rs`).
//!
//! Storage is banked: a block maps to bank `block_number % banks`, each
//! bank owning `entries / banks` rows — the layout knob Fig. 11-style
//! port sweeps care about.

use crate::fpc::{Fpc, FpcPolicy};
use crate::history::{hash_pc, HistoryView};
use crate::rng::SimRng;
use crate::value::{ValuePrediction, ValuePredictor};

/// Bytes per µ-op in trace addresses (`Program::inst_addr` spacing).
const INST_BYTES: u64 = 4;

/// Geometry and sizing of a [`DVtage`] predictor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DVtageConfig {
    /// Blocks in the (tagless) Last Value Table.
    pub lvt_entries: usize,
    /// Blocks in the tagless base delta table.
    pub base_entries: usize,
    /// Blocks in each tagged delta component.
    pub tagged_entries: usize,
    /// History length per tagged component (ascending).
    pub history_lengths: Vec<usize>,
    /// Tag width of the shortest-history component; component `i` uses
    /// `base_tag_bits + i` bits.
    pub base_tag_bits: u32,
    /// Signed width of a stored delta; values whose stride does not fit
    /// simply never gain confidence.
    pub delta_bits: u32,
    /// µ-op slots per block entry (the BeBoP fetch-block size).
    pub block_size: usize,
    /// Storage banks; a block lives in bank `block_number % banks`.
    pub banks: usize,
}

impl DVtageConfig {
    /// The HPCA 2015-flavored default geometry for a given block shape:
    /// 2K-block LVT and base, 6 × 512-block tagged components, 16-bit
    /// deltas. At `block_size` 4 this is ≈ 140 KB — under half the
    /// EOLE hybrid's 385 KB (Table 2) for the `dvtage_budget`
    /// comparison to beat.
    // lint:allow(hot-alloc) cold construction path: tables allocated once, before the measured loop
    pub fn paper(block_size: usize, banks: usize) -> Self {
        DVtageConfig {
            lvt_entries: 2048,
            base_entries: 2048,
            tagged_entries: 512,
            history_lengths: vec![2, 4, 8, 16, 32, 64],
            base_tag_bits: 11,
            delta_bits: 16,
            block_size,
            banks,
        }
    }

    /// Scales the paper geometry down by powers of two until the total
    /// storage fits `budget_bits` — the equal-storage-budget constructor
    /// the `dvtage_budget` experiment uses. The shape (component count,
    /// history lengths, delta width) is preserved; only capacities move.
    ///
    /// Best effort: capacities floor at `banks` rows (a bank cannot be
    /// empty), so a budget below that smallest geometry is *not*
    /// reachable and the returned configuration exceeds it. Callers
    /// that report equal-budget comparisons read the actual size back
    /// via `storage_bits()` (the experiment prints both sizes in its
    /// title and its test asserts the ≤ relation for the real budget).
    pub fn with_budget_bits(budget_bits: u64, block_size: usize, banks: usize) -> Self {
        let mut cfg = Self::paper(block_size, banks);
        // Grow first (the paper geometry may sit far below the budget),
        // then shrink until it fits.
        while DVtage::storage_bits_of(&cfg) * 2 <= budget_bits && cfg.lvt_entries < 1 << 20 {
            cfg.lvt_entries *= 2;
            cfg.base_entries *= 2;
            cfg.tagged_entries *= 2;
        }
        while DVtage::storage_bits_of(&cfg) > budget_bits && cfg.tagged_entries > banks {
            cfg.lvt_entries /= 2;
            cfg.base_entries /= 2;
            cfg.tagged_entries /= 2;
        }
        cfg
    }
}

/// One delta slot: the stored delta and its confidence.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct DeltaSlot {
    delta: i64,
    conf: Fpc,
}

/// Per-block metadata of a tagged component: one tag and one usefulness
/// counter cover all `block_size` slots (BeBoP's tag amortization).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct TaggedMeta {
    valid: bool,
    tag: u32,
    useful: u8,
}

#[derive(Clone, Debug, PartialEq, Eq)]
struct TaggedComponent {
    meta: Vec<TaggedMeta>,
    slots: Vec<DeltaSlot>, // meta.len() * block_size
}

/// How often the usefulness bits decay (graceful aging, as in VTAGE).
const USEFUL_RESET_PERIOD: u64 = 1 << 18;

/// The D-VTAGE block-based value predictor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DVtage {
    config: DVtageConfig,
    /// Committed last values, `lvt_entries * block_size` flat.
    lvt: Vec<u64>,
    /// Base delta table, `base_entries * block_size` flat.
    base: Vec<DeltaSlot>,
    tagged: Vec<TaggedComponent>,
    policy: FpcPolicy,
    rng: SimRng,
    updates: u64,
}

impl DVtage {
    /// Creates a D-VTAGE from an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if `history_lengths` is empty or not strictly ascending, or
    /// if `block_size`/`banks` are not powers of two (`CoreConfig`
    /// validation reports these as typed errors before any predictor is
    /// built; hitting one here is a harness authoring bug).
    // lint:allow(hot-alloc) cold construction path: tables allocated once, before the measured loop
    pub fn new(config: DVtageConfig, seed: u64) -> Self {
        assert!(!config.history_lengths.is_empty());
        assert!(
            config.history_lengths.windows(2).all(|w| w[0] < w[1]),
            "history lengths must be strictly ascending"
        );
        assert!(config.block_size.is_power_of_two() && config.banks.is_power_of_two());
        let norm = |n: usize| n.next_power_of_two().max(config.banks);
        let config = DVtageConfig {
            lvt_entries: norm(config.lvt_entries),
            base_entries: norm(config.base_entries),
            tagged_entries: norm(config.tagged_entries),
            ..config
        };
        let b = config.block_size;
        let comps = config.history_lengths.len();
        DVtage {
            lvt: vec![0; config.lvt_entries * b],
            base: vec![DeltaSlot::default(); config.base_entries * b],
            tagged: (0..comps)
                .map(|_| TaggedComponent {
                    meta: vec![TaggedMeta::default(); config.tagged_entries],
                    slots: vec![DeltaSlot::default(); config.tagged_entries * b],
                })
                .collect(),
            config,
            policy: FpcPolicy::eole(),
            rng: SimRng::new(seed),
            updates: 0,
        }
    }

    /// The HPCA 2015-flavored default for a block shape.
    pub fn paper(block_size: usize, banks: usize, seed: u64) -> Self {
        Self::new(DVtageConfig::paper(block_size, banks), seed)
    }

    /// The active configuration.
    pub fn config(&self) -> &DVtageConfig {
        &self.config
    }

    /// `(block address, slot)` of a µ-op address.
    #[inline]
    fn block_of(&self, pc: u64) -> (u64, usize) {
        let span = self.config.block_size as u64 * INST_BYTES;
        let bpc = pc & !(span - 1);
        let slot = ((pc - bpc) / INST_BYTES) as usize;
        (bpc, slot)
    }

    /// Banked row index: the block's bank is `block_number % banks`, the
    /// row within the bank a hash over the remaining block bits.
    #[inline]
    fn banked_index(&self, bpc: u64, entries: usize, seed: u64) -> usize {
        let banks = self.config.banks;
        let rows = entries / banks;
        let block_num = bpc / (self.config.block_size as u64 * INST_BYTES);
        let bank = (block_num as usize) & (banks - 1);
        let row = (hash_pc(block_num >> banks.trailing_zeros(), seed) as usize) & (rows - 1);
        bank * rows + row
    }

    #[inline]
    fn lvt_index(&self, bpc: u64) -> usize {
        self.banked_index(bpc, self.config.lvt_entries, 0x1f7a)
    }

    #[inline]
    fn base_index(&self, bpc: u64) -> usize {
        self.banked_index(bpc, self.config.base_entries, 0xd5e1)
    }

    fn tagged_index(&self, comp: usize, bpc: u64, hist: HistoryView<'_>) -> usize {
        let folded = hist.fold(self.config.history_lengths[comp], 0x2d_0000 + comp as u64);
        self.banked_index(bpc ^ folded, self.config.tagged_entries, 0x6d7a + comp as u64)
    }

    fn tag_for(&self, comp: usize, bpc: u64, hist: HistoryView<'_>) -> u32 {
        let folded = hist.fold(self.config.history_lengths[comp], 0x9d_0000 + comp as u64);
        let bits = self.config.base_tag_bits + comp as u32;
        (hash_pc(bpc ^ folded.rotate_left(13), 0xd7a9) as u32) & ((1u32 << bits) - 1)
    }

    /// Longest matching tagged component for the block, if any.
    fn provider(&self, bpc: u64, hist: HistoryView<'_>) -> Option<(usize, usize)> {
        for comp in (0..self.tagged.len()).rev() {
            let idx = self.tagged_index(comp, bpc, hist);
            let m = &self.tagged[comp].meta[idx];
            if m.valid && m.tag == self.tag_for(comp, bpc, hist) {
                return Some((comp, idx));
            }
        }
        None
    }

    /// Signed range check against `delta_bits`.
    #[inline]
    fn representable(&self, delta: i64) -> bool {
        let bits = self.config.delta_bits;
        if bits >= 64 {
            return true;
        }
        let max = (1i64 << (bits - 1)) - 1;
        delta >= -max - 1 && delta <= max
    }

    /// The committed last value for `pc`.
    pub fn committed_last(&self, pc: u64) -> u64 {
        let (bpc, slot) = self.block_of(pc);
        self.lvt[self.lvt_index(bpc) * self.config.block_size + slot]
    }

    /// Predicts `last + delta` for the µ-op at `pc`. `spec_last`, when
    /// present, is the youngest in-flight predicted value of the same
    /// static µ-op (supplied by the [`BlockVp`](super::BlockVp)
    /// speculative window); otherwise the committed LVT value anchors the
    /// delta.
    ///
    /// Delta selection is per slot and **by confidence** (the hybrid's
    /// rule, not plain longest-match-wins): the longest matching tagged
    /// component competes with the base stride slot and the more
    /// confident one provides; a tie goes to the tagged side (context
    /// dominates). This is what keeps a perfectly-strided µ-op covered
    /// even while an erratic neighbor in the same fetch block churns
    /// low-confidence tagged entries over their shared tag.
    ///
    /// **Never mutates** — rolling back speculation is the caller's
    /// window drop, nothing here.
    pub fn predict_spec(
        &self,
        pc: u64,
        hist: HistoryView<'_>,
        spec_last: Option<u64>,
    ) -> Option<ValuePrediction> {
        let (bpc, slot) = self.block_of(pc);
        let last = spec_last.unwrap_or_else(|| {
            self.lvt[self.lvt_index(bpc) * self.config.block_size + slot]
        });
        let base = self.base[self.base_index(bpc) * self.config.block_size + slot];
        let ds = match self.provider(bpc, hist) {
            Some((comp, idx)) => {
                let tagged = self.tagged[comp].slots[idx * self.config.block_size + slot];
                if tagged.conf.level() >= base.conf.level() {
                    tagged
                } else {
                    base
                }
            }
            None => base,
        };
        Some(ValuePrediction::from_conf(last.wrapping_add(ds.delta as u64), ds.conf))
    }

    /// Allocates a block entry in a component above the provider, with
    /// VTAGE's useful==0 scan, shortest-first preference, and randomized
    /// tie-break. **Copy-on-allocate** (the property that makes shared
    /// block tags viable, per BeBoP): sibling slots inherit the
    /// providing entry's delta *and* confidence, so one erratic µ-op
    /// allocating for its block never wipes what its neighbors learned;
    /// only the mispredicting slot resets to the observed delta at zero
    /// confidence. Allocation-free (commit path).
    fn allocate_above(
        &mut self,
        provider: Option<(usize, usize)>,
        bpc: u64,
        hist: HistoryView<'_>,
        slot: usize,
        delta: i64,
    ) {
        let start = provider.map(|(c, _)| c + 1).unwrap_or(0);
        if start >= self.tagged.len() {
            return;
        }
        let mut shortest: Option<(usize, usize)> = None;
        let mut second: Option<(usize, usize)> = None;
        let mut free_count = 0usize;
        for comp in start..self.tagged.len() {
            let idx = self.tagged_index(comp, bpc, hist);
            if self.tagged[comp].meta[idx].useful == 0 {
                free_count += 1;
                if shortest.is_none() {
                    shortest = Some((comp, idx));
                } else if second.is_none() {
                    second = Some((comp, idx));
                }
            }
        }
        let Some(shortest) = shortest else {
            for comp in start..self.tagged.len() {
                let idx = self.tagged_index(comp, bpc, hist);
                let m = &mut self.tagged[comp].meta[idx];
                m.useful = m.useful.saturating_sub(1);
            }
            return;
        };
        let (comp, idx) = if free_count >= 2 && self.rng.one_in(3) {
            second.expect("free_count >= 2")
        } else {
            shortest
        };
        let tag = self.tag_for(comp, bpc, hist);
        let b = self.config.block_size;
        self.tagged[comp].meta[idx] = TaggedMeta { valid: true, tag, useful: 0 };
        for s in 0..b {
            // Inherit each sibling slot's state from the entry that was
            // providing the block's predictions.
            let inherited = match provider {
                Some((pc_comp, pidx)) => self.tagged[pc_comp].slots[pidx * b + s],
                None => self.base[self.base_index(bpc) * b + s],
            };
            self.tagged[comp].slots[idx * b + s] = inherited;
        }
        self.tagged[comp].slots[idx * b + slot] = DeltaSlot { delta, conf: Fpc::new() };
    }

    fn maybe_age_useful(&mut self) {
        self.updates += 1;
        if self.updates.is_multiple_of(USEFUL_RESET_PERIOD) {
            for comp in &mut self.tagged {
                for m in comp.meta.iter_mut() {
                    m.useful = m.useful.saturating_sub(1);
                }
            }
        }
    }

    /// Trains with the architectural result at commit. The true delta is
    /// taken against the *committed* last value (commits arrive in
    /// program order, so that is the previous instance's actual result);
    /// the LVT then advances to `actual`.
    ///
    /// Like the hybrid it replaces, **both halves always train**: the
    /// base slot learns the stride unconditionally, and the tagged
    /// provider (when one matches) updates its own slot. A new tagged
    /// entry is allocated only when whatever provided was wrong — a
    /// strided µ-op served correctly by the base never spawns tagged
    /// entries for its block.
    pub fn train_commit(&mut self, pc: u64, hist: HistoryView<'_>, actual: u64) {
        self.maybe_age_useful();
        let (bpc, slot) = self.block_of(pc);
        let b = self.config.block_size;
        let lvt_at = self.lvt_index(bpc) * b + slot;
        let committed_last = self.lvt[lvt_at];
        let true_delta = actual.wrapping_sub(committed_last) as i64;
        let storable = if self.representable(true_delta) { true_delta } else { 0 };
        let policy = self.policy;
        // Base (stride) half: always trains.
        let base_at = self.base_index(bpc) * b + slot;
        let base_correct = {
            let s = &mut self.base[base_at];
            let correct = s.delta == true_delta;
            if correct {
                s.conf.on_correct(&policy, &mut self.rng);
            } else if s.conf.level() == 0 {
                s.delta = storable;
            } else {
                s.conf.on_incorrect();
            }
            correct
        };
        // Tagged (context) half: the longest match trains its own slot.
        match self.provider(bpc, hist) {
            Some((comp, idx)) => {
                let at = idx * b + slot;
                let correct = self.tagged[comp].slots[at].delta == true_delta;
                if correct {
                    let m = &mut self.tagged[comp].meta[idx];
                    m.useful = (m.useful + 1).min(3);
                    self.tagged[comp].slots[at].conf.on_correct(&policy, &mut self.rng);
                } else {
                    self.tagged[comp].meta[idx].useful =
                        self.tagged[comp].meta[idx].useful.saturating_sub(1);
                    let s = &mut self.tagged[comp].slots[at];
                    if s.conf.level() == 0 {
                        s.delta = storable;
                    } else {
                        s.conf.on_incorrect();
                    }
                    self.allocate_above(Some((comp, idx)), bpc, hist, slot, storable);
                }
            }
            None => {
                if !base_correct {
                    self.allocate_above(None, bpc, hist, slot, storable);
                }
            }
        }
        self.lvt[lvt_at] = actual;
    }

    fn storage_bits_of(cfg: &DVtageConfig) -> u64 {
        let b = cfg.block_size as u64;
        let slot_bits = cfg.delta_bits as u64 + Fpc::BITS;
        // LVT: full last values per slot (the one full-width structure).
        let lvt = cfg.lvt_entries as u64 * b * 64;
        // Base: per-slot delta + confidence, no tags.
        let base = cfg.base_entries as u64 * b * slot_bits;
        // Tagged: one (valid + tag + useful) per block, slots of deltas.
        let mut tagged = 0u64;
        for i in 0..cfg.history_lengths.len() as u64 {
            let tag_bits = cfg.base_tag_bits as u64 + i;
            tagged += cfg.tagged_entries as u64 * (1 + tag_bits + 2 + b * slot_bits);
        }
        lvt + base + tagged
    }
}

impl crate::snapshot::Snapshot for DVtage {
    fn snapshot(&self, w: &mut crate::snapshot::SnapWriter) {
        w.put_usize(self.lvt.len());
        for &v in &self.lvt {
            w.put_u64(v);
        }
        w.put_usize(self.base.len());
        for s in &self.base {
            w.put_i64(s.delta);
            s.conf.snapshot(w);
        }
        w.put_usize(self.tagged.len());
        for comp in &self.tagged {
            w.put_usize(comp.meta.len());
            for m in &comp.meta {
                w.put_bool(m.valid);
                w.put_u32(m.tag);
                w.put_u8(m.useful);
            }
            w.put_usize(comp.slots.len());
            for s in &comp.slots {
                w.put_i64(s.delta);
                s.conf.snapshot(w);
            }
        }
        self.rng.snapshot(w);
        w.put_u64(self.updates);
    }

    fn restore(
        &mut self,
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<(), crate::snapshot::SnapError> {
        use crate::snapshot::SnapError;
        if r.get_usize()? != self.lvt.len() {
            return Err(SnapError::new("dvtage lvt size mismatch"));
        }
        for v in &mut self.lvt {
            *v = r.get_u64()?;
        }
        if r.get_usize()? != self.base.len() {
            return Err(SnapError::new("dvtage base size mismatch"));
        }
        for s in &mut self.base {
            s.delta = r.get_i64()?;
            s.conf.restore(r)?;
        }
        if r.get_usize()? != self.tagged.len() {
            return Err(SnapError::new("dvtage component count mismatch"));
        }
        for comp in &mut self.tagged {
            if r.get_usize()? != comp.meta.len() {
                return Err(SnapError::new("dvtage meta size mismatch"));
            }
            for m in comp.meta.iter_mut() {
                m.valid = r.get_bool()?;
                m.tag = r.get_u32()?;
                m.useful = r.get_u8()?;
            }
            if r.get_usize()? != comp.slots.len() {
                return Err(SnapError::new("dvtage slots size mismatch"));
            }
            for s in comp.slots.iter_mut() {
                s.delta = r.get_i64()?;
                s.conf.restore(r)?;
            }
        }
        self.rng.restore(r)?;
        self.updates = r.get_u64()?;
        Ok(())
    }
}

/// The per-instruction protocol, used by offline evaluation
/// ([`evaluate_stream`](super::evaluate_stream), the predictor
/// microbench) where fetch is immediately followed by commit: no
/// overlap, so the committed LVT value *is* the speculative last value
/// and nothing needs repairing on `squash`.
impl ValuePredictor for DVtage {
    fn predict(&mut self, pc: u64, hist: HistoryView<'_>) -> Option<ValuePrediction> {
        self.predict_spec(pc, hist, None)
    }

    fn train(&mut self, pc: u64, hist: HistoryView<'_>, actual: u64) {
        self.train_commit(pc, hist, actual);
    }

    fn squash(&mut self, _pc: u64) {
        // Tables only hold committed state; speculation lives in the
        // BlockVp window, which is not in play on this path.
    }

    fn storage_bits(&self) -> u64 {
        Self::storage_bits_of(&self.config)
    }

    fn name(&self) -> &'static str {
        "D-VTAGE"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::BranchHistory;
    use crate::value::evaluate_stream;

    #[test]
    fn base_delta_learns_strides_like_a_stride_predictor() {
        let hist = BranchHistory::new();
        let mut p = DVtage::paper(1, 1, 7);
        for i in 0..4_000u64 {
            let actual = 1000 + 24 * i;
            if i > 4 {
                let pred = p.predict_spec(0x40, hist.view(0), None).unwrap();
                assert_eq!(pred.value, actual, "iteration {i}");
            }
            p.train_commit(0x40, hist.view(0), actual);
        }
        assert!(p.predict_spec(0x40, hist.view(0), None).unwrap().confident);
    }

    #[test]
    fn speculative_last_chains_inflight_instances() {
        let hist = BranchHistory::new();
        let mut p = DVtage::paper(1, 1, 7);
        for i in 0..3_000u64 {
            p.train_commit(0x40, hist.view(0), 8 * i);
        }
        let committed = p.committed_last(0x40);
        // First in-flight instance extrapolates from the committed value,
        // the second from the first's prediction, and so on.
        let a = p.predict_spec(0x40, hist.view(0), None).unwrap();
        assert_eq!(a.value, committed.wrapping_add(8));
        let b = p.predict_spec(0x40, hist.view(0), Some(a.value)).unwrap();
        assert_eq!(b.value, committed.wrapping_add(16));
        let c = p.predict_spec(0x40, hist.view(0), Some(b.value)).unwrap();
        assert_eq!(c.value, committed.wrapping_add(24));
    }

    #[test]
    fn history_correlated_deltas_use_tagged_components() {
        // The value alternates +1/+3 with the last branch outcome: the
        // base delta table cannot settle, the tagged components can.
        let mut hist = BranchHistory::new();
        let mut p = DVtage::paper(1, 1, 2);
        let mut value = 0u64;
        let mut correct_late = 0u64;
        let total = 30_000;
        for i in 0..total {
            let taken = (i / 3) % 2 == 0;
            hist.push(taken);
            let pos = hist.len();
            value = value.wrapping_add(if taken { 1 } else { 3 });
            let pred = p.predict_spec(0x50, hist.view(pos), None).unwrap();
            if i > total / 2 && pred.value == value {
                correct_late += 1;
            }
            p.train_commit(0x50, hist.view(pos), value);
        }
        let rate = correct_late as f64 / (total / 2 - 1) as f64;
        assert!(rate > 0.8, "history-correlated delta accuracy = {rate:.3}");
    }

    #[test]
    fn block_slots_are_independent() {
        let hist = BranchHistory::new();
        let mut p = DVtage::paper(4, 1, 3);
        // Two µ-ops in the same 4-slot block, different strides.
        for i in 0..3_000u64 {
            p.train_commit(0x40, hist.view(0), 10 * i);
            p.train_commit(0x44, hist.view(0), 7 * i);
        }
        let a = p.predict_spec(0x40, hist.view(0), None).unwrap();
        let b = p.predict_spec(0x44, hist.view(0), None).unwrap();
        assert_eq!(a.value.wrapping_sub(p.committed_last(0x40)), 10);
        assert_eq!(b.value.wrapping_sub(p.committed_last(0x44)), 7);
        assert!(a.confident && b.confident);
    }

    #[test]
    fn unrepresentable_deltas_never_gain_confidence() {
        let hist = BranchHistory::new();
        let mut p = DVtage::paper(1, 1, 5);
        // Stride of 2^40 cannot fit in 16 bits.
        let stream = (0..4_000u64).map(|i| (0x60u64, 0u32, i << 40));
        let s = evaluate_stream(&mut p, &hist, stream);
        assert_eq!(s.confident, 0, "16-bit deltas cannot cover a 2^40 stride");
    }

    #[test]
    fn banked_layout_predicts_like_single_bank_on_constants() {
        let hist = BranchHistory::new();
        for banks in [1usize, 4] {
            let mut p = DVtage::paper(4, banks, 9);
            let stream = (0..4_000u64).map(|i| ((0x100 + 4 * (i % 8)), 0u32, 42));
            let s = evaluate_stream(&mut p, &hist, stream);
            assert!(s.confident > 2_000, "{banks} banks: confident = {}", s.confident);
            assert_eq!(s.confident, s.confident_correct);
        }
    }

    #[test]
    fn storage_is_well_under_the_hybrid() {
        let p = DVtage::paper(4, 4, 1);
        let kb = p.storage_bits() as f64 / 8.0 / 1024.0;
        // The hybrid (Table 2) is ≈ 385 KB; differential storage must
        // land far below it.
        assert!((80.0..240.0).contains(&kb), "D-VTAGE storage = {kb:.1} KB");
    }

    #[test]
    fn budget_constructor_respects_the_budget() {
        let hybrid_bits = crate::value::VtageTwoDeltaStride::paper(1).storage_bits();
        let cfg = DVtageConfig::with_budget_bits(hybrid_bits, 4, 4);
        let got = DVtage::storage_bits_of(&cfg);
        assert!(got <= hybrid_bits, "budgeted {got} > budget {hybrid_bits}");
        // And uses a decent fraction of it (not degenerate).
        assert!(got * 4 >= hybrid_bits, "budgeted size degenerately small");
    }

    #[test]
    fn rejects_non_ascending_histories() {
        let cfg = DVtageConfig {
            history_lengths: vec![8, 4],
            ..DVtageConfig::paper(1, 1)
        };
        assert!(std::panic::catch_unwind(|| DVtage::new(cfg, 1)).is_err());
    }
}
