//! Stride and 2-Delta Stride predictors (the *computational* family).
//!
//! [`StridePredictor`] predicts `last + stride` where `stride` is the most
//! recent difference. [`TwoDeltaStride`] (Eickemeyer & Vassiliadis, the
//! paper's [5]) only commits a new stride once it has been observed twice,
//! which filters one-off jumps; it is the computational half of the paper's
//! hybrid (Table 2: 8192 entries, full tags, 251.9 KB).
//!
//! Computational predictors extrapolate from the *last committed* value, so
//! with several instances of the same static µ-op in flight the k-th
//! speculative instance must be predicted as `last + stride * (k+1)`
//! (the paper notes conventional value predictors "need to track inflight
//! predictions"). Each entry therefore carries an in-flight counter,
//! incremented at [`predict`](super::ValuePredictor::predict) and drained by
//! `train`/`squash`.

use std::collections::HashMap;

use crate::fpc::{Fpc, FpcPolicy};
use crate::history::{hash_pc, HistoryView};
use crate::rng::SimRng;
use crate::value::{ValuePrediction, ValuePredictor};

#[derive(Clone, Copy, Debug, Default)]
struct StrideEntry {
    valid: bool,
    tag: u64,
    last: u64,
    stride: i64,
    conf: Fpc,
}

/// Simple stride predictor with FPC confidence.
#[derive(Clone, Debug)]
pub struct StridePredictor {
    entries: Vec<StrideEntry>,
    policy: FpcPolicy,
    rng: SimRng,
    inflight: HashMap<u64, u32>,
}

impl StridePredictor {
    /// Creates a predictor with `entries` slots (rounded to a power of two).
    // lint:allow(hot-alloc) cold construction path: tables allocated once, before the measured loop
    pub fn new(entries: usize, seed: u64) -> Self {
        let n = entries.next_power_of_two().max(1);
        StridePredictor {
            entries: vec![StrideEntry::default(); n],
            policy: FpcPolicy::eole(),
            rng: SimRng::new(seed),
            inflight: HashMap::new(),
        }
    }

    fn index(&self, pc: u64) -> usize {
        (hash_pc(pc, 0x57de) as usize) & (self.entries.len() - 1)
    }
}

impl ValuePredictor for StridePredictor {
    fn predict(&mut self, pc: u64, _hist: HistoryView<'_>) -> Option<ValuePrediction> {
        let idx = self.index(pc);
        // Every queried instance counts as in flight (even on a table
        // miss): its later train/squash will decrement, and this keeps the
        // count exact across entry allocation and replacement.
        let k = self.inflight.entry(pc).or_insert(0);
        let steps = *k as i64 + 1;
        *k += 1;
        let e = &self.entries[idx];
        if e.valid && e.tag == pc {
            let value = e.last.wrapping_add((e.stride.wrapping_mul(steps)) as u64);
            Some(ValuePrediction::from_conf(value, e.conf))
        } else {
            None
        }
    }

    fn train(&mut self, pc: u64, _hist: HistoryView<'_>, actual: u64) {
        if let Some(k) = self.inflight.get_mut(&pc) {
            *k = k.saturating_sub(1);
        }
        let idx = self.index(pc);
        let e = &mut self.entries[idx];
        if e.valid && e.tag == pc {
            let expected = e.last.wrapping_add(e.stride as u64);
            if expected == actual {
                e.conf.on_correct(&self.policy, &mut self.rng);
            } else {
                e.conf.on_incorrect();
            }
            e.stride = actual.wrapping_sub(e.last) as i64;
            e.last = actual;
        } else {
            *e = StrideEntry {
                valid: true,
                tag: pc,
                last: actual,
                stride: 0,
                conf: Fpc::new(),
            };
        }
    }

    fn squash(&mut self, pc: u64) {
        if let Some(k) = self.inflight.get_mut(&pc) {
            *k = k.saturating_sub(1);
        }
    }

    fn storage_bits(&self) -> u64 {
        // full tag + last + stride + confidence.
        self.entries.len() as u64 * (64 + 64 + 64 + Fpc::BITS)
    }

    fn name(&self) -> &'static str {
        "Stride"
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct TwoDeltaEntry {
    valid: bool,
    tag: u64,
    last: u64,
    stride1: i64,
    stride2: i64,
    conf: Fpc,
}

/// 2-Delta Stride predictor: `stride2` (the predicting stride) is updated
/// only when the newly observed stride matches `stride1` (the last observed
/// stride), i.e. a stride must repeat before it is trusted.
#[derive(Clone, Debug)]
pub struct TwoDeltaStride {
    entries: Vec<TwoDeltaEntry>,
    policy: FpcPolicy,
    rng: SimRng,
    inflight: HashMap<u64, u32>,
}

impl TwoDeltaStride {
    /// The paper's configuration: 8192 entries, full tags (Table 2).
    pub fn paper(seed: u64) -> Self {
        Self::new(8192, seed)
    }

    /// Creates a predictor with `entries` slots (rounded to a power of two).
    // lint:allow(hot-alloc) cold construction path: tables allocated once, before the measured loop
    pub fn new(entries: usize, seed: u64) -> Self {
        let n = entries.next_power_of_two().max(1);
        TwoDeltaStride {
            entries: vec![TwoDeltaEntry::default(); n],
            policy: FpcPolicy::eole(),
            rng: SimRng::new(seed),
            inflight: HashMap::new(),
        }
    }

    fn index(&self, pc: u64) -> usize {
        (hash_pc(pc, 0x2d57) as usize) & (self.entries.len() - 1)
    }

    /// Number of in-flight (queried, not yet retired) instances of `pc`
    /// (exposed for pipeline assertions in tests).
    pub fn inflight(&self, pc: u64) -> u32 {
        self.inflight.get(&pc).copied().unwrap_or(0)
    }
}

impl ValuePredictor for TwoDeltaStride {
    fn predict(&mut self, pc: u64, _hist: HistoryView<'_>) -> Option<ValuePrediction> {
        let idx = self.index(pc);
        let k = self.inflight.entry(pc).or_insert(0);
        let steps = *k as i64 + 1;
        *k += 1;
        let e = &self.entries[idx];
        if e.valid && e.tag == pc {
            let value = e.last.wrapping_add((e.stride2.wrapping_mul(steps)) as u64);
            Some(ValuePrediction::from_conf(value, e.conf))
        } else {
            None
        }
    }

    fn train(&mut self, pc: u64, _hist: HistoryView<'_>, actual: u64) {
        if let Some(k) = self.inflight.get_mut(&pc) {
            *k = k.saturating_sub(1);
        }
        let idx = self.index(pc);
        let e = &mut self.entries[idx];
        if e.valid && e.tag == pc {
            let expected = e.last.wrapping_add(e.stride2 as u64);
            if expected == actual {
                e.conf.on_correct(&self.policy, &mut self.rng);
            } else {
                e.conf.on_incorrect();
            }
            let new_stride = actual.wrapping_sub(e.last) as i64;
            if new_stride == e.stride1 {
                e.stride2 = new_stride;
            }
            e.stride1 = new_stride;
            e.last = actual;
        } else {
            *e = TwoDeltaEntry {
                valid: true,
                tag: pc,
                last: actual,
                stride1: 0,
                stride2: 0,
                conf: Fpc::new(),
            };
        }
    }

    fn squash(&mut self, pc: u64) {
        if let Some(k) = self.inflight.get_mut(&pc) {
            *k = k.saturating_sub(1);
        }
    }

    fn storage_bits(&self) -> u64 {
        // Table 2 counts tag + last value + two strides + confidence.
        self.entries.len() as u64 * (64 + 64 + 64 + 64 + Fpc::BITS)
    }

    fn name(&self) -> &'static str {
        "2D-Stride"
    }
}

impl crate::snapshot::Snapshot for StridePredictor {
    fn snapshot(&self, w: &mut crate::snapshot::SnapWriter) {
        w.put_usize(self.entries.len());
        for e in &self.entries {
            w.put_bool(e.valid);
            w.put_u64(e.tag);
            w.put_u64(e.last);
            w.put_i64(e.stride);
            e.conf.snapshot(w);
        }
        self.rng.snapshot(w);
        // Zero-count keys are kept on drain (`saturating_sub`), so they are
        // part of the state a replay would rebuild — serialize them too.
        crate::snapshot::put_map_u64_u32(w, &self.inflight);
    }

    fn restore(
        &mut self,
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<(), crate::snapshot::SnapError> {
        use crate::snapshot::SnapError;
        if r.get_usize()? != self.entries.len() {
            return Err(SnapError::new("stride size mismatch"));
        }
        for e in &mut self.entries {
            e.valid = r.get_bool()?;
            e.tag = r.get_u64()?;
            e.last = r.get_u64()?;
            e.stride = r.get_i64()?;
            e.conf.restore(r)?;
        }
        self.rng.restore(r)?;
        crate::snapshot::get_map_u64_u32(r, &mut self.inflight)
    }
}

impl crate::snapshot::Snapshot for TwoDeltaStride {
    fn snapshot(&self, w: &mut crate::snapshot::SnapWriter) {
        w.put_usize(self.entries.len());
        for e in &self.entries {
            w.put_bool(e.valid);
            w.put_u64(e.tag);
            w.put_u64(e.last);
            w.put_i64(e.stride1);
            w.put_i64(e.stride2);
            e.conf.snapshot(w);
        }
        self.rng.snapshot(w);
        crate::snapshot::put_map_u64_u32(w, &self.inflight);
    }

    fn restore(
        &mut self,
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<(), crate::snapshot::SnapError> {
        use crate::snapshot::SnapError;
        if r.get_usize()? != self.entries.len() {
            return Err(SnapError::new("2d-stride size mismatch"));
        }
        for e in &mut self.entries {
            e.valid = r.get_bool()?;
            e.tag = r.get_u64()?;
            e.last = r.get_u64()?;
            e.stride1 = r.get_i64()?;
            e.stride2 = r.get_i64()?;
            e.conf.restore(r)?;
        }
        self.rng.restore(r)?;
        crate::snapshot::get_map_u64_u32(r, &mut self.inflight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::BranchHistory;
    use crate::value::evaluate_stream;

    fn h() -> BranchHistory {
        BranchHistory::new()
    }

    #[test]
    fn stride_learns_arithmetic_sequence() {
        let hist = h();
        let mut p = StridePredictor::new(64, 1);
        for i in 0..3u64 {
            p.train(0x10, hist.view(0), 100 + 8 * i);
        }
        let pr = p.predict(0x10, hist.view(0)).unwrap();
        assert_eq!(pr.value, 100 + 8 * 3);
        p.squash(0x10);
    }

    #[test]
    fn two_delta_requires_stride_to_repeat() {
        let hist = h();
        let mut p = TwoDeltaStride::new(64, 1);
        p.train(0x10, hist.view(0), 100); // allocate
        p.train(0x10, hist.view(0), 108); // stride1 = 8, stride2 still 0
        let pr = p.predict(0x10, hist.view(0)).unwrap();
        assert_eq!(pr.value, 108, "stride2 not yet promoted");
        p.squash(0x10);
        p.train(0x10, hist.view(0), 116); // stride 8 repeats → stride2 = 8
        let pr = p.predict(0x10, hist.view(0)).unwrap();
        assert_eq!(pr.value, 124);
        p.squash(0x10);
    }

    #[test]
    fn two_delta_filters_one_off_jump() {
        let hist = h();
        let mut p = TwoDeltaStride::new(64, 1);
        for i in 0..10u64 {
            p.train(0x10, hist.view(0), 8 * i);
        }
        // One-off jump: value leaps, then resumes the +8 sequence.
        p.train(0x10, hist.view(0), 1000);
        // stride1 became the jump, but stride2 is still 8: next prediction
        // extrapolates 1000 + 8.
        let pr = p.predict(0x10, hist.view(0)).unwrap();
        assert_eq!(pr.value, 1008);
        p.squash(0x10);
    }

    #[test]
    fn inflight_instances_extrapolate() {
        let hist = h();
        let mut p = TwoDeltaStride::new(64, 1);
        for i in 0..5u64 {
            p.train(0x10, hist.view(0), 8 * i); // last = 32, stride2 = 8
        }
        let a = p.predict(0x10, hist.view(0)).unwrap();
        let b = p.predict(0x10, hist.view(0)).unwrap();
        let c = p.predict(0x10, hist.view(0)).unwrap();
        assert_eq!(a.value, 40);
        assert_eq!(b.value, 48, "second in-flight instance sees one more stride");
        assert_eq!(c.value, 56);
        assert_eq!(p.inflight(0x10), 3);
        // Commit them in order: each train consumes one in-flight instance.
        p.train(0x10, hist.view(0), 40);
        p.train(0x10, hist.view(0), 48);
        p.squash(0x10); // the third was squashed instead
        assert_eq!(p.inflight(0x10), 0);
    }

    #[test]
    fn confidence_saturates_and_is_accurate_on_stream(){
        let hist = h();
        let mut p = TwoDeltaStride::paper(3);
        let stream = (0..4000u64).map(|i| (0x88, 0u32, 16 * i));
        let s = evaluate_stream(&mut p, &hist, stream);
        assert!(s.confident > 2000, "confident = {}", s.confident);
        assert_eq!(s.confident, s.confident_correct);
    }

    #[test]
    fn squash_on_unknown_pc_is_harmless() {
        let mut p = TwoDeltaStride::new(16, 1);
        p.squash(0xdead);
        assert_eq!(p.inflight(0xdead), 0);
    }

    #[test]
    fn paper_storage_is_about_252_kb() {
        let p = TwoDeltaStride::paper(1);
        let kb = p.storage_bits() as f64 / 8.0 / 1024.0;
        assert!((240.0..265.0).contains(&kb), "2D-Stride storage = {kb:.1} KB");
    }
}
