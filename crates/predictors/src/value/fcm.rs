//! Finite Context Method (FCM) predictor — Sazeides & Smith's classic
//! context-based scheme (the paper's [29]).
//!
//! Two-level structure: a per-pc *value history table* (VHT) records a hash
//! of the last `ORDER` committed results; a shared *value prediction table*
//! (VPT) maps that context hash to the next value. Included as the
//! context-based baseline against VTAGE (which replaces the value history
//! with global *branch* history and thereby avoids speculative-history
//! tracking).
//!
//! Simplification (documented): the context is updated at commit only, so
//! back-to-back in-flight instances of the same pc see a stale context.
//! This loses some coverage on tight loops — exactly the weakness of FCM
//! that the paper cites when motivating VTAGE.

use crate::fpc::{Fpc, FpcPolicy};
use crate::history::{hash_pc, HistoryView};
use crate::rng::SimRng;
use crate::value::{ValuePrediction, ValuePredictor};

/// Context order: how many previous values form the context.
const ORDER_BITS_PER_VALUE: u32 = 16;

#[derive(Clone, Copy, Debug, Default)]
struct VhtEntry {
    valid: bool,
    tag: u64,
    /// Shift-register of 16-bit folds of the last 4 values.
    context: u64,
}

#[derive(Clone, Copy, Debug, Default)]
struct VptEntry {
    value: u64,
    conf: Fpc,
}

/// Order-4 FCM with FPC confidence.
#[derive(Clone, Debug)]
pub struct Fcm {
    vht: Vec<VhtEntry>,
    vpt: Vec<VptEntry>,
    policy: FpcPolicy,
    rng: SimRng,
}

impl Fcm {
    /// Creates an FCM with `vht_entries` first-level and `vpt_entries`
    /// second-level slots (each rounded to a power of two).
    // lint:allow(hot-alloc) cold construction path: tables allocated once, before the measured loop
    pub fn new(vht_entries: usize, vpt_entries: usize, seed: u64) -> Self {
        Fcm {
            vht: vec![VhtEntry::default(); vht_entries.next_power_of_two().max(1)],
            vpt: vec![VptEntry::default(); vpt_entries.next_power_of_two().max(1)],
            policy: FpcPolicy::eole(),
            rng: SimRng::new(seed),
        }
    }

    fn vht_index(&self, pc: u64) -> usize {
        (hash_pc(pc, 0xfc11) as usize) & (self.vht.len() - 1)
    }

    fn vpt_index(&self, pc: u64, context: u64) -> usize {
        (hash_pc(pc ^ context.wrapping_mul(0x9e37_79b9_7f4a_7c15), 0xfc12) as usize)
            & (self.vpt.len() - 1)
    }

    fn fold_value(v: u64) -> u64 {
        let m = v.wrapping_mul(0xff51_afd7_ed55_8ccd);
        (m ^ (m >> 29) ^ (m >> 47)) & ((1 << ORDER_BITS_PER_VALUE) - 1)
    }
}

impl ValuePredictor for Fcm {
    fn predict(&mut self, pc: u64, _hist: HistoryView<'_>) -> Option<ValuePrediction> {
        let e = &self.vht[self.vht_index(pc)];
        if e.valid && e.tag == pc {
            let v = &self.vpt[self.vpt_index(pc, e.context)];
            Some(ValuePrediction::from_conf(v.value, v.conf))
        } else {
            None
        }
    }

    fn train(&mut self, pc: u64, _hist: HistoryView<'_>, actual: u64) {
        let idx = self.vht_index(pc);
        let e = &mut self.vht[idx];
        if e.valid && e.tag == pc {
            let context = e.context;
            // Advance the context by one committed value (order-4 window).
            e.context = (context << ORDER_BITS_PER_VALUE) | Self::fold_value(actual);
            let vidx = self.vpt_index(pc, context);
            let v = &mut self.vpt[vidx];
            if v.value == actual {
                v.conf.on_correct(&self.policy, &mut self.rng);
            } else if v.conf.level() == 0 {
                v.value = actual;
            } else {
                v.conf.on_incorrect();
            }
        } else {
            *e = VhtEntry { valid: true, tag: pc, context: Self::fold_value(actual) };
        }
    }

    fn squash(&mut self, _pc: u64) {
        // Contexts advance at commit only; nothing speculative to undo.
    }

    fn storage_bits(&self) -> u64 {
        let vht = self.vht.len() as u64 * (64 + 64);
        let vpt = self.vpt.len() as u64 * (64 + Fpc::BITS);
        vht + vpt
    }

    fn name(&self) -> &'static str {
        "FCM-4"
    }
}

impl crate::snapshot::Snapshot for Fcm {
    fn snapshot(&self, w: &mut crate::snapshot::SnapWriter) {
        w.put_usize(self.vht.len());
        for e in &self.vht {
            w.put_bool(e.valid);
            w.put_u64(e.tag);
            w.put_u64(e.context);
        }
        w.put_usize(self.vpt.len());
        for e in &self.vpt {
            w.put_u64(e.value);
            e.conf.snapshot(w);
        }
        self.rng.snapshot(w);
    }

    fn restore(
        &mut self,
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<(), crate::snapshot::SnapError> {
        use crate::snapshot::SnapError;
        if r.get_usize()? != self.vht.len() {
            return Err(SnapError::new("fcm vht size mismatch"));
        }
        for e in &mut self.vht {
            e.valid = r.get_bool()?;
            e.tag = r.get_u64()?;
            e.context = r.get_u64()?;
        }
        if r.get_usize()? != self.vpt.len() {
            return Err(SnapError::new("fcm vpt size mismatch"));
        }
        for e in &mut self.vpt {
            e.value = r.get_u64()?;
            e.conf.restore(r)?;
        }
        self.rng.restore(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::BranchHistory;
    use crate::value::evaluate_stream;

    #[test]
    fn learns_a_repeating_pattern_stride_cannot() {
        // Pattern 3, 1, 4, 1, 5 repeating: stride predictors fail, FCM keys
        // on the 4-value context and predicts the successor.
        let hist = BranchHistory::new();
        let mut p = Fcm::new(1024, 8192, 7);
        let pattern = [3u64, 1, 4, 1, 5];
        let stream = (0..20_000).map(|i| (0x30u64, 0u32, pattern[i % pattern.len()]));
        let s = evaluate_stream(&mut p, &hist, stream);
        assert!(
            s.correct as f64 / s.attempted as f64 > 0.9,
            "FCM should learn the period-5 pattern, correct = {}/{}",
            s.correct,
            s.attempted
        );
        assert!(s.confident_correct as f64 / s.confident.max(1) as f64 > 0.99);
    }

    #[test]
    fn no_prediction_before_context_exists() {
        let hist = BranchHistory::new();
        let mut p = Fcm::new(64, 64, 1);
        assert!(p.predict(0x99, hist.view(0)).is_none());
    }

    #[test]
    fn replaces_value_only_at_zero_confidence() {
        let hist = BranchHistory::new();
        let mut p = Fcm::new(64, 64, 1);
        // Build one stable context→value association.
        for _ in 0..200 {
            p.train(0x10, hist.view(0), 5);
        }
        let before = p.predict(0x10, hist.view(0)).unwrap();
        assert_eq!(before.value, 5);
    }

    #[test]
    fn storage_bits_counts_both_levels() {
        let p = Fcm::new(1024, 8192, 1);
        assert_eq!(p.storage_bits(), 1024 * 128 + 8192 * 67);
    }
}
