//! VTAGE — the Value TAgged GEometric history length predictor
//! (Perais & Seznec, HPCA 2014; the paper's [25]).
//!
//! Like the ITTAGE indirect-branch predictor, VTAGE selects a prediction
//! with the *global branch history*: a tagless base table indexed by pc plus
//! `N` tagged components indexed by `hash(pc, history[0..L_i])` with
//! geometrically increasing `L_i`. The longest matching component provides
//! the prediction.
//!
//! Its key property (quoted in §2): *"it does not require the previous value
//! to predict the current one"* — so unlike stride/FCM predictors it needs
//! no in-flight tracking and nothing must be repaired on a squash.
//!
//! Configuration from Table 2: 8192-entry base, 6 × 1024-entry tagged
//! components, tags of `12 + rank` bits, FPC confidence.

use crate::fpc::{Fpc, FpcPolicy};
use crate::history::{hash_pc, HistoryView};
use crate::rng::SimRng;
use crate::value::{ValuePrediction, ValuePredictor};

/// Geometry and sizing of a [`Vtage`] predictor.
#[derive(Clone, Debug)]
pub struct VtageConfig {
    /// Entries in the tagless base component.
    pub base_entries: usize,
    /// Entries in each tagged component.
    pub tagged_entries: usize,
    /// History length per tagged component (ascending).
    pub history_lengths: Vec<usize>,
    /// Tag width of the shortest-history component; component `i` uses
    /// `base_tag_bits + i` bits (the paper's "12 + rank").
    pub base_tag_bits: u32,
}

impl VtageConfig {
    /// The paper's Table 2 configuration.
    // lint:allow(hot-alloc) cold construction path: tables allocated once, before the measured loop
    pub fn paper() -> Self {
        VtageConfig {
            base_entries: 8192,
            tagged_entries: 1024,
            history_lengths: vec![2, 4, 8, 16, 32, 64],
            base_tag_bits: 12,
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct BaseEntry {
    value: u64,
    conf: Fpc,
}

#[derive(Clone, Copy, Debug, Default)]
struct TaggedEntry {
    valid: bool,
    tag: u32,
    value: u64,
    conf: Fpc,
    useful: u8, // 2-bit usefulness for the allocation policy
}

/// The VTAGE value predictor.
#[derive(Clone, Debug)]
pub struct Vtage {
    config: VtageConfig,
    base: Vec<BaseEntry>,
    tagged: Vec<Vec<TaggedEntry>>,
    policy: FpcPolicy,
    rng: SimRng,
    updates: u64,
}

/// How often the usefulness bits decay (graceful aging, as in TAGE).
const USEFUL_RESET_PERIOD: u64 = 1 << 18;

impl Vtage {
    /// Creates a VTAGE with the paper's geometry.
    pub fn paper(seed: u64) -> Self {
        Self::new(VtageConfig::paper(), seed)
    }

    /// Creates a VTAGE from an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if `history_lengths` is empty or not strictly ascending.
    // lint:allow(hot-alloc) cold construction path: tables allocated once, before the measured loop
    pub fn new(config: VtageConfig, seed: u64) -> Self {
        assert!(!config.history_lengths.is_empty());
        assert!(
            config.history_lengths.windows(2).all(|w| w[0] < w[1]),
            "history lengths must be strictly ascending"
        );
        let base_n = config.base_entries.next_power_of_two().max(1);
        let tagged_n = config.tagged_entries.next_power_of_two().max(1);
        let comps = config.history_lengths.len();
        Vtage {
            base: vec![BaseEntry::default(); base_n],
            tagged: vec![vec![TaggedEntry::default(); tagged_n]; comps],
            config,
            policy: FpcPolicy::eole(),
            rng: SimRng::new(seed),
            updates: 0,
        }
    }

    fn base_index(&self, pc: u64) -> usize {
        (hash_pc(pc, 0xb5e) as usize) & (self.base.len() - 1)
    }

    fn tagged_index(&self, comp: usize, pc: u64, hist: HistoryView<'_>) -> usize {
        let folded = hist.fold(self.config.history_lengths[comp], 0x1d_0000 + comp as u64);
        (hash_pc(pc ^ folded, 0x7a6e) as usize) & (self.tagged[comp].len() - 1)
    }

    fn tag_for(&self, comp: usize, pc: u64, hist: HistoryView<'_>) -> u32 {
        let folded = hist.fold(self.config.history_lengths[comp], 0x7a_0000 + comp as u64);
        let bits = self.config.base_tag_bits + comp as u32;
        (hash_pc(pc ^ folded.rotate_left(17), 0x7a9) as u32) & ((1u32 << bits) - 1)
    }

    /// Longest matching tagged component and its entry index, if any.
    fn provider(&self, pc: u64, hist: HistoryView<'_>) -> Option<(usize, usize)> {
        for comp in (0..self.tagged.len()).rev() {
            let idx = self.tagged_index(comp, pc, hist);
            let e = &self.tagged[comp][idx];
            if e.valid && e.tag == self.tag_for(comp, pc, hist) {
                return Some((comp, idx));
            }
        }
        None
    }

    fn allocate_above(&mut self, provider_comp: Option<usize>, pc: u64, hist: HistoryView<'_>, actual: u64) {
        let start = provider_comp.map(|c| c + 1).unwrap_or(0);
        if start >= self.tagged.len() {
            return;
        }
        // Scan candidate slots with useful == 0. Only the two shortest
        // candidates and the total count matter below, so track them in
        // place — this runs on the commit path, allocation-free.
        let mut shortest: Option<(usize, usize)> = None;
        let mut second: Option<(usize, usize)> = None;
        let mut free_count = 0usize;
        for comp in start..self.tagged.len() {
            let idx = self.tagged_index(comp, pc, hist);
            if self.tagged[comp][idx].useful == 0 {
                free_count += 1;
                if shortest.is_none() {
                    shortest = Some((comp, idx));
                } else if second.is_none() {
                    second = Some((comp, idx));
                }
            }
        }
        let Some(shortest) = shortest else {
            // Aging: make room for the future instead of thrashing now.
            for comp in start..self.tagged.len() {
                let idx = self.tagged_index(comp, pc, hist);
                let e = &mut self.tagged[comp][idx];
                e.useful = e.useful.saturating_sub(1);
            }
            return;
        };
        // Prefer shorter-history slots (cheaper to hit again), with a random
        // tie-break among the two shortest so allocations spread out.
        let (comp, idx) = if free_count >= 2 && self.rng.one_in(3) {
            second.expect("free_count >= 2")
        } else {
            shortest
        };
        self.tagged[comp][idx] = TaggedEntry {
            valid: true,
            tag: self.tag_for(comp, pc, hist),
            value: actual,
            conf: Fpc::new(),
            useful: 0,
        };
    }

    /// True if any tagged component matches — used by the hybrid's
    /// selection rule (tagged hit beats the stride side).
    pub fn tagged_hit(&self, pc: u64, hist: HistoryView<'_>) -> bool {
        self.provider(pc, hist).is_some()
    }

    fn maybe_age_useful(&mut self) {
        self.updates += 1;
        if self.updates.is_multiple_of(USEFUL_RESET_PERIOD) {
            for comp in &mut self.tagged {
                for e in comp.iter_mut() {
                    e.useful = e.useful.saturating_sub(1);
                }
            }
        }
    }
}

impl ValuePredictor for Vtage {
    fn predict(&mut self, pc: u64, hist: HistoryView<'_>) -> Option<ValuePrediction> {
        if let Some((comp, idx)) = self.provider(pc, hist) {
            let e = &self.tagged[comp][idx];
            Some(ValuePrediction::from_conf(e.value, e.conf))
        } else {
            let e = &self.base[self.base_index(pc)];
            Some(ValuePrediction::from_conf(e.value, e.conf))
        }
    }

    fn train(&mut self, pc: u64, hist: HistoryView<'_>, actual: u64) {
        self.maybe_age_useful();
        match self.provider(pc, hist) {
            Some((comp, idx)) => {
                let correct = self.tagged[comp][idx].value == actual;
                if correct {
                    let policy = self.policy;
                    let e = &mut self.tagged[comp][idx];
                    e.useful = (e.useful + 1).min(3);
                    e.conf.on_correct(&policy, &mut self.rng);
                } else {
                    let e = &mut self.tagged[comp][idx];
                    e.useful = e.useful.saturating_sub(1);
                    if e.conf.level() == 0 {
                        e.value = actual;
                    } else {
                        e.conf.on_incorrect();
                    }
                    self.allocate_above(Some(comp), pc, hist, actual);
                }
            }
            None => {
                let bidx = self.base_index(pc);
                let correct = self.base[bidx].value == actual;
                if correct {
                    let policy = self.policy;
                    self.base[bidx].conf.on_correct(&policy, &mut self.rng);
                } else {
                    if self.base[bidx].conf.level() == 0 {
                        self.base[bidx].value = actual;
                    } else {
                        self.base[bidx].conf.on_incorrect();
                    }
                    self.allocate_above(None, pc, hist, actual);
                }
            }
        }
    }

    fn squash(&mut self, _pc: u64) {
        // Context-based on global branch history: nothing speculative kept.
    }

    fn storage_bits(&self) -> u64 {
        let base = self.base.len() as u64 * (64 + Fpc::BITS);
        let mut tagged = 0u64;
        for (i, comp) in self.tagged.iter().enumerate() {
            let tag_bits = self.config.base_tag_bits as u64 + i as u64;
            tagged += comp.len() as u64 * (1 + tag_bits + 64 + Fpc::BITS + 2);
        }
        base + tagged
    }

    fn name(&self) -> &'static str {
        "VTAGE"
    }
}

impl crate::snapshot::Snapshot for Vtage {
    fn snapshot(&self, w: &mut crate::snapshot::SnapWriter) {
        w.put_usize(self.base.len());
        for e in &self.base {
            w.put_u64(e.value);
            e.conf.snapshot(w);
        }
        w.put_usize(self.tagged.len());
        for comp in &self.tagged {
            w.put_usize(comp.len());
            for e in comp {
                w.put_bool(e.valid);
                w.put_u32(e.tag);
                w.put_u64(e.value);
                e.conf.snapshot(w);
                w.put_u8(e.useful);
            }
        }
        self.rng.snapshot(w);
        w.put_u64(self.updates);
    }

    fn restore(
        &mut self,
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<(), crate::snapshot::SnapError> {
        use crate::snapshot::SnapError;
        if r.get_usize()? != self.base.len() {
            return Err(SnapError::new("vtage base size mismatch"));
        }
        for e in &mut self.base {
            e.value = r.get_u64()?;
            e.conf.restore(r)?;
        }
        if r.get_usize()? != self.tagged.len() {
            return Err(SnapError::new("vtage component count mismatch"));
        }
        for comp in &mut self.tagged {
            if r.get_usize()? != comp.len() {
                return Err(SnapError::new("vtage component size mismatch"));
            }
            for e in comp.iter_mut() {
                e.valid = r.get_bool()?;
                e.tag = r.get_u32()?;
                e.value = r.get_u64()?;
                e.conf.restore(r)?;
                e.useful = r.get_u8()?;
            }
        }
        self.rng.restore(r)?;
        self.updates = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::BranchHistory;
    use crate::value::evaluate_stream;

    #[test]
    fn base_component_learns_constants() {
        let hist = BranchHistory::new();
        let mut p = Vtage::paper(1);
        for _ in 0..3_000 {
            p.train(0x40, hist.view(0), 123);
        }
        let pr = p.predict(0x40, hist.view(0)).unwrap();
        assert_eq!(pr.value, 123);
        assert!(pr.confident);
    }

    #[test]
    fn history_correlated_values_use_tagged_components() {
        // The value produced at pc 0x50 alternates with the last branch
        // outcome: taken → 7, not-taken → 9. The base table alone cannot
        // capture this; the tagged components can.
        let mut hist = BranchHistory::new();
        let mut p = Vtage::paper(2);
        let mut correct_late = 0u64;
        let total = 30_000;
        for i in 0..total {
            let taken = (i / 3) % 2 == 0;
            hist.push(taken);
            let pos = hist.len();
            let actual = if taken { 7 } else { 9 };
            let pred = p.predict(0x50, hist.view(pos)).unwrap();
            if i > total / 2 && pred.value == actual {
                correct_late += 1;
            }
            p.train(0x50, hist.view(pos), actual);
        }
        let rate = correct_late as f64 / (total / 2 - 1) as f64;
        assert!(rate > 0.85, "history-correlated accuracy = {rate:.3}");
    }

    #[test]
    fn confident_predictions_are_reliable_on_patterned_stream() {
        let mut hist = BranchHistory::new();
        for i in 0..1000 {
            hist.push(i % 2 == 0);
        }
        let mut p = Vtage::paper(3);
        let stream = (0..20_000u64).map(|i| (0x60, (i % 1000) as u32, (i % 4) * 10));
        let s = evaluate_stream(&mut p, &hist, stream);
        if s.confident > 0 {
            assert!(
                s.confident_correct as f64 / s.confident as f64 > 0.95,
                "confident accuracy too low: {}/{}",
                s.confident_correct,
                s.confident
            );
        }
    }

    #[test]
    fn storage_is_in_the_papers_ballpark() {
        let p = Vtage::paper(1);
        let kb = p.storage_bits() as f64 / 8.0 / 1024.0;
        // Paper's Table 2 reports ~68.7 KB base + ~64.1 KB tagged ≈ 133 KB.
        assert!((100.0..170.0).contains(&kb), "VTAGE storage = {kb:.1} KB");
    }

    #[test]
    fn rejects_non_ascending_histories() {
        let cfg = VtageConfig {
            base_entries: 64,
            tagged_entries: 64,
            history_lengths: vec![8, 4],
            base_tag_bits: 8,
        };
        assert!(std::panic::catch_unwind(|| Vtage::new(cfg, 1)).is_err());
    }

    #[test]
    fn squash_is_a_no_op() {
        let hist = BranchHistory::new();
        let mut p = Vtage::paper(1);
        p.train(0x40, hist.view(0), 5);
        let before = p.predict(0x40, hist.view(0));
        p.squash(0x40);
        assert_eq!(p.predict(0x40, hist.view(0)), before);
    }
}
