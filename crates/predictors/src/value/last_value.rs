//! Last-Value Predictor (LVP) — Lipasti & Shen's original scheme.
//!
//! Predicts that an instruction produces the same value as its previous
//! dynamic instance. Included as the historical baseline of the taxonomy;
//! not used in the paper's main configuration.

use crate::fpc::{Fpc, FpcPolicy};
use crate::history::{hash_pc, HistoryView};
use crate::rng::SimRng;
use crate::value::{ValuePrediction, ValuePredictor};

#[derive(Clone, Copy, Debug, Default)]
struct Entry {
    valid: bool,
    tag: u64,
    last: u64,
    conf: Fpc,
}

/// Direct-mapped last-value predictor with full tags and FPC confidence.
#[derive(Clone, Debug)]
pub struct LastValue {
    entries: Vec<Entry>,
    policy: FpcPolicy,
    rng: SimRng,
}

impl LastValue {
    /// Creates a predictor with `entries` slots (rounded up to a power of
    /// two) and an RNG `seed` for the probabilistic counters.
    // lint:allow(hot-alloc) cold construction path: tables allocated once, before the measured loop
    pub fn new(entries: usize, seed: u64) -> Self {
        let n = entries.next_power_of_two().max(1);
        LastValue {
            entries: vec![Entry::default(); n],
            policy: FpcPolicy::eole(),
            rng: SimRng::new(seed),
        }
    }

    fn index(&self, pc: u64) -> usize {
        (hash_pc(pc, 0x1a57) as usize) & (self.entries.len() - 1)
    }
}

impl ValuePredictor for LastValue {
    fn predict(&mut self, pc: u64, _hist: HistoryView<'_>) -> Option<ValuePrediction> {
        let e = &self.entries[self.index(pc)];
        if e.valid && e.tag == pc {
            Some(ValuePrediction::from_conf(e.last, e.conf))
        } else {
            None
        }
    }

    fn train(&mut self, pc: u64, _hist: HistoryView<'_>, actual: u64) {
        let idx = self.index(pc);
        let e = &mut self.entries[idx];
        if e.valid && e.tag == pc {
            if e.last == actual {
                e.conf.on_correct(&self.policy, &mut self.rng);
            } else {
                e.conf.on_incorrect();
                e.last = actual;
            }
        } else {
            *e = Entry { valid: true, tag: pc, last: actual, conf: Fpc::new() };
        }
    }

    fn squash(&mut self, _pc: u64) {
        // LVP predicts from committed state only; nothing speculative to undo.
    }

    fn storage_bits(&self) -> u64 {
        // tag (full 64) + value + confidence, per entry.
        self.entries.len() as u64 * (64 + 64 + Fpc::BITS)
    }

    fn name(&self) -> &'static str {
        "LVP"
    }
}

impl crate::snapshot::Snapshot for LastValue {
    fn snapshot(&self, w: &mut crate::snapshot::SnapWriter) {
        w.put_usize(self.entries.len());
        for e in &self.entries {
            w.put_bool(e.valid);
            w.put_u64(e.tag);
            w.put_u64(e.last);
            e.conf.snapshot(w);
        }
        self.rng.snapshot(w);
    }

    fn restore(
        &mut self,
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<(), crate::snapshot::SnapError> {
        use crate::snapshot::SnapError;
        if r.get_usize()? != self.entries.len() {
            return Err(SnapError::new("lvp size mismatch"));
        }
        for e in &mut self.entries {
            e.valid = r.get_bool()?;
            e.tag = r.get_u64()?;
            e.last = r.get_u64()?;
            e.conf.restore(r)?;
        }
        self.rng.restore(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::BranchHistory;

    fn view(h: &BranchHistory) -> HistoryView<'_> {
        h.view(0)
    }

    #[test]
    fn predicts_repeated_value_after_training() {
        let h = BranchHistory::new();
        let mut p = LastValue::new(64, 1);
        assert!(p.predict(0x100, view(&h)).is_none());
        p.train(0x100, view(&h), 42);
        let pr = p.predict(0x100, view(&h)).unwrap();
        assert_eq!(pr.value, 42);
        assert!(!pr.confident, "one training must not saturate FPC");
    }

    #[test]
    fn confidence_saturates_on_stable_value() {
        let h = BranchHistory::new();
        let mut p = LastValue::new(64, 1);
        for _ in 0..5_000 {
            p.train(0x100, view(&h), 42);
        }
        assert!(p.predict(0x100, view(&h)).unwrap().confident);
    }

    #[test]
    fn misprediction_resets_confidence() {
        let h = BranchHistory::new();
        let mut p = LastValue::new(64, 1);
        for _ in 0..5_000 {
            p.train(0x100, view(&h), 42);
        }
        p.train(0x100, view(&h), 43);
        let pr = p.predict(0x100, view(&h)).unwrap();
        assert_eq!(pr.value, 43);
        assert!(!pr.confident);
    }

    #[test]
    fn conflicting_pcs_evict() {
        let h = BranchHistory::new();
        let mut p = LastValue::new(1, 1); // force conflicts
        p.train(0x100, view(&h), 1);
        p.train(0x200, view(&h), 2);
        // 0x100 was evicted by 0x200 in the single slot.
        assert!(p.predict(0x100, view(&h)).is_none());
        assert_eq!(p.predict(0x200, view(&h)).unwrap().value, 2);
    }

    #[test]
    fn storage_accounting() {
        let p = LastValue::new(8192, 1);
        assert_eq!(p.storage_bits(), 8192 * (64 + 64 + 3));
    }
}
