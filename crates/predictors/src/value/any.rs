//! Static dispatch over every value-predictor kind.
//!
//! The timing core queries the value predictor for every VP-eligible µ-op
//! at fetch — squarely on the hot path. [`AnyValuePredictor`] is a closed
//! enum over the concrete predictors, so the core holds predictors by
//! value (one pointer-chase and one indirect call fewer per query than
//! `Box<dyn ValuePredictor>`, and the match compiles to a jump table the
//! branch predictor learns). The open [`ValuePredictor`] trait remains the
//! extension point for offline tools (`evaluate_stream` takes `&mut dyn`).

use crate::history::HistoryView;
use crate::value::{
    DVtage, Fcm, LastValue, StridePredictor, TwoDeltaStride, ValuePrediction, ValuePredictor,
    Vtage, VtageTwoDeltaStride,
};

/// A value predictor held by value — every kind the harness knows.
#[derive(Clone, Debug)]
pub enum AnyValuePredictor {
    /// The paper's VTAGE + 2-delta-stride hybrid (Table 2).
    VtageTwoDeltaStride(VtageTwoDeltaStride),
    /// VTAGE alone.
    Vtage(Vtage),
    /// 2-delta stride alone.
    TwoDeltaStride(TwoDeltaStride),
    /// Simple stride.
    Stride(StridePredictor),
    /// Last value.
    LastValue(LastValue),
    /// Order-4 FCM.
    Fcm(Fcm),
    /// Block-based differential VTAGE (BeBoP/D-VTAGE, HPCA 2015) — on
    /// this per-instruction path it runs in its offline commit-
    /// immediately mode; the timing core uses it through
    /// [`crate::value::BlockVp`] instead.
    DVtage(DVtage),
}

macro_rules! dispatch {
    ($self:ident, $p:ident => $body:expr) => {
        match $self {
            AnyValuePredictor::VtageTwoDeltaStride($p) => $body,
            AnyValuePredictor::Vtage($p) => $body,
            AnyValuePredictor::TwoDeltaStride($p) => $body,
            AnyValuePredictor::Stride($p) => $body,
            AnyValuePredictor::LastValue($p) => $body,
            AnyValuePredictor::Fcm($p) => $body,
            AnyValuePredictor::DVtage($p) => $body,
        }
    };
}

impl ValuePredictor for AnyValuePredictor {
    #[inline]
    fn predict(&mut self, pc: u64, hist: HistoryView<'_>) -> Option<ValuePrediction> {
        dispatch!(self, p => p.predict(pc, hist))
    }

    #[inline]
    fn train(&mut self, pc: u64, hist: HistoryView<'_>, actual: u64) {
        dispatch!(self, p => p.train(pc, hist, actual))
    }

    #[inline]
    fn squash(&mut self, pc: u64) {
        dispatch!(self, p => p.squash(pc))
    }

    fn storage_bits(&self) -> u64 {
        dispatch!(self, p => p.storage_bits())
    }

    fn name(&self) -> &'static str {
        dispatch!(self, p => p.name())
    }
}

impl crate::snapshot::Snapshot for AnyValuePredictor {
    fn snapshot(&self, w: &mut crate::snapshot::SnapWriter) {
        // Variant tag pins the kind; restore refuses a different variant
        // (the predictor kind is configuration, not warm state).
        let tag: u8 = match self {
            AnyValuePredictor::VtageTwoDeltaStride(_) => 0,
            AnyValuePredictor::Vtage(_) => 1,
            AnyValuePredictor::TwoDeltaStride(_) => 2,
            AnyValuePredictor::Stride(_) => 3,
            AnyValuePredictor::LastValue(_) => 4,
            AnyValuePredictor::Fcm(_) => 5,
            AnyValuePredictor::DVtage(_) => 6,
        };
        w.put_u8(tag);
        dispatch!(self, p => p.snapshot(w))
    }

    fn restore(
        &mut self,
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<(), crate::snapshot::SnapError> {
        use crate::snapshot::SnapError;
        let tag = r.get_u8()?;
        let expected: u8 = match self {
            AnyValuePredictor::VtageTwoDeltaStride(_) => 0,
            AnyValuePredictor::Vtage(_) => 1,
            AnyValuePredictor::TwoDeltaStride(_) => 2,
            AnyValuePredictor::Stride(_) => 3,
            AnyValuePredictor::LastValue(_) => 4,
            AnyValuePredictor::Fcm(_) => 5,
            AnyValuePredictor::DVtage(_) => 6,
        };
        if tag != expected {
            return Err(SnapError::new("value predictor kind mismatch"));
        }
        dispatch!(self, p => p.restore(r))
    }
}

impl From<VtageTwoDeltaStride> for AnyValuePredictor {
    fn from(p: VtageTwoDeltaStride) -> Self {
        AnyValuePredictor::VtageTwoDeltaStride(p)
    }
}

impl From<Vtage> for AnyValuePredictor {
    fn from(p: Vtage) -> Self {
        AnyValuePredictor::Vtage(p)
    }
}

impl From<TwoDeltaStride> for AnyValuePredictor {
    fn from(p: TwoDeltaStride) -> Self {
        AnyValuePredictor::TwoDeltaStride(p)
    }
}

impl From<StridePredictor> for AnyValuePredictor {
    fn from(p: StridePredictor) -> Self {
        AnyValuePredictor::Stride(p)
    }
}

impl From<LastValue> for AnyValuePredictor {
    fn from(p: LastValue) -> Self {
        AnyValuePredictor::LastValue(p)
    }
}

impl From<Fcm> for AnyValuePredictor {
    fn from(p: Fcm) -> Self {
        AnyValuePredictor::Fcm(p)
    }
}

impl From<DVtage> for AnyValuePredictor {
    fn from(p: DVtage) -> Self {
        AnyValuePredictor::DVtage(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::BranchHistory;

    /// Enum dispatch and `Box<dyn>` dispatch must be observationally
    /// identical — same predictions, same training effects.
    #[test]
    fn enum_and_dyn_dispatch_agree() {
        let hist = BranchHistory::from_outcomes(&[true, false, true, true]);
        let mut as_enum: AnyValuePredictor = TwoDeltaStride::paper(7).into();
        let mut as_dyn: Box<dyn ValuePredictor> = Box::new(TwoDeltaStride::paper(7));
        for i in 0..2_000u64 {
            let view = hist.view((i % 4) as usize);
            let a = as_enum.predict(0x40, view);
            let b = as_dyn.predict(0x40, view);
            assert_eq!(a, b, "iteration {i}");
            as_enum.train(0x40, view, i * 3);
            as_dyn.train(0x40, view, i * 3);
        }
        assert_eq!(as_enum.name(), as_dyn.name());
        assert_eq!(as_enum.storage_bits(), as_dyn.storage_bits());
    }

    #[test]
    fn every_kind_constructs_and_reports_a_name() {
        let hist = BranchHistory::new();
        let kinds: Vec<AnyValuePredictor> = vec![
            VtageTwoDeltaStride::paper(1).into(),
            Vtage::paper(1).into(),
            TwoDeltaStride::paper(1).into(),
            StridePredictor::new(256, 1).into(),
            LastValue::new(256, 1).into(),
            Fcm::new(256, 256, 1).into(),
            crate::value::DVtage::paper(4, 4, 1).into(),
        ];
        for mut p in kinds {
            assert!(!p.name().is_empty());
            assert!(p.storage_bits() > 0);
            // The protocol is total for every variant.
            let _ = p.predict(0x8, hist.view(0));
            p.train(0x8, hist.view(0), 42);
            let _ = p.predict(0x8, hist.view(0));
            p.squash(0x8);
        }
    }
}
