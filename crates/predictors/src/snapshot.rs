//! Warm-state snapshot plumbing: a tiny, dependency-free binary codec
//! plus the [`Snapshot`] trait implemented by every table that
//! `functional_warm` trains.
//!
//! ## Design rules
//!
//! * **Canonical bytes.** Two states are equal iff their serialized
//!   bytes are equal; everything is written little-endian in a fixed
//!   field order, and map-shaped state is written sorted by key. The
//!   byte buffer is the equality witness used by the paranoid
//!   restored-vs-replayed checks in `eole-core`.
//! * **Restore into an existing value.** `restore` mutates a value that
//!   was built from the *same configuration*; pure-configuration fields
//!   (geometries, FPC denominators, capacities) are never serialized.
//!   Any shape mismatch (table length, enum variant, marker) is a typed
//!   [`SnapError`] — callers treat it as a corrupt checkpoint and fall
//!   back to functional replay, never a panic.
//! * **No versioning here.** Format evolution is handled one level up by
//!   the `eole-warmstate/v1` payload marker; the codec itself is
//!   deliberately dumb.

use std::collections::HashMap;

/// Typed decode error: the buffer does not describe a value compatible
/// with the one being restored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapError {
    /// Static description of the field or marker that failed.
    pub context: &'static str,
}

impl SnapError {
    /// Builds an error tagged with the failing field.
    #[must_use]
    pub fn new(context: &'static str) -> Self {
        SnapError { context }
    }
}

impl std::fmt::Display for SnapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "snapshot decode error: {}", self.context)
    }
}

impl std::error::Error for SnapError {}

/// Append-only little-endian byte sink.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// Creates an empty writer.
    // lint:allow(hot-alloc) checkpoint capture is a cold, per-interval path
    #[must_use]
    pub fn new() -> Self {
        SnapWriter { buf: Vec::new() }
    }

    /// Consumes the writer, returning the serialized bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Current length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes a raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a bool as one byte (0/1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Writes an `i8` as its two's-complement byte.
    pub fn put_i8(&mut self, v: i8) {
        self.buf.push(v as u8);
    }

    /// Writes a `u32` little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64` little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `i64` little-endian.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64` (the repo targets 64-bit hosts; the
    /// reader rejects values that do not round-trip).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Writes a short ASCII marker, length-prefixed, used to label
    /// sections so a truncated or misaligned buffer fails fast.
    pub fn put_marker(&mut self, m: &'static str) {
        debug_assert!(m.len() <= u8::MAX as usize);
        self.buf.push(m.len() as u8);
        self.buf.extend_from_slice(m.as_bytes());
    }
}

/// Cursor over a serialized snapshot.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Wraps a byte slice.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless the whole buffer was consumed — trailing garbage is
    /// corruption, not padding.
    ///
    /// # Errors
    ///
    /// Returns [`SnapError`] if bytes remain.
    pub fn finish(&self) -> Result<(), SnapError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapError::new("trailing bytes after snapshot"))
        }
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::new(context));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`SnapError`] on a truncated buffer.
    pub fn get_u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1, "truncated u8")?[0])
    }

    /// Reads a bool; any byte other than 0/1 is corruption.
    ///
    /// # Errors
    ///
    /// Returns [`SnapError`] on truncation or a non-boolean byte.
    pub fn get_bool(&mut self) -> Result<bool, SnapError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapError::new("non-boolean byte")),
        }
    }

    /// Reads an `i8`.
    ///
    /// # Errors
    ///
    /// Returns [`SnapError`] on a truncated buffer.
    pub fn get_i8(&mut self) -> Result<i8, SnapError> {
        Ok(self.get_u8()? as i8)
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`SnapError`] on a truncated buffer.
    pub fn get_u32(&mut self) -> Result<u32, SnapError> {
        let s = self.take(4, "truncated u32")?;
        let mut b = [0u8; 4];
        b.copy_from_slice(s);
        Ok(u32::from_le_bytes(b))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`SnapError`] on a truncated buffer.
    pub fn get_u64(&mut self) -> Result<u64, SnapError> {
        let s = self.take(8, "truncated u64")?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }

    /// Reads a little-endian `i64`.
    ///
    /// # Errors
    ///
    /// Returns [`SnapError`] on a truncated buffer.
    pub fn get_i64(&mut self) -> Result<i64, SnapError> {
        let s = self.take(8, "truncated i64")?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(i64::from_le_bytes(b))
    }

    /// Reads a `usize` written by [`SnapWriter::put_usize`].
    ///
    /// # Errors
    ///
    /// Returns [`SnapError`] on truncation or a value that does not fit
    /// the host `usize`.
    pub fn get_usize(&mut self) -> Result<usize, SnapError> {
        usize::try_from(self.get_u64()?).map_err(|_| SnapError::new("usize overflow"))
    }

    /// Consumes a marker written by [`SnapWriter::put_marker`] and
    /// checks it matches.
    ///
    /// # Errors
    ///
    /// Returns [`SnapError`] on truncation or a marker mismatch.
    pub fn expect_marker(&mut self, m: &'static str) -> Result<(), SnapError> {
        let len = self.get_u8()? as usize;
        if len != m.len() {
            return Err(SnapError::new("marker length mismatch"));
        }
        let s = self.take(len, "truncated marker")?;
        if s == m.as_bytes() {
            Ok(())
        } else {
            Err(SnapError::new("marker mismatch"))
        }
    }
}

/// Bit-exact state capture for a warm table.
///
/// `snapshot` appends the value's dynamic state; `restore` overwrites
/// the same state in a value built from the same configuration. The
/// contract — checked by the warm-state proptests in `eole-core` and by
/// `EOLE_INTERVAL_PARANOID=1` — is that restore-then-snapshot
/// reproduces the exact bytes, and that a restored table is
/// behaviorally indistinguishable from the one captured.
pub trait Snapshot {
    /// Appends this value's dynamic state to `w`.
    fn snapshot(&self, w: &mut SnapWriter);

    /// Overwrites this value's dynamic state from `r`.
    ///
    /// # Errors
    ///
    /// Returns [`SnapError`] if the buffer is truncated or describes a
    /// value of a different shape (table sizes, enum variant).
    fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError>;
}

/// Serializes a `HashMap<u64, u32>` deterministically (sorted by key).
///
/// Zero-valued entries are written too: the warm contract is
/// *byte-identity of behavior-relevant state*, and keeping the map's
/// exact key set means a restored run and a replayed run hash, grow,
/// and rehash identically from the restore point on.
// lint:allow(hot-alloc) cold checkpoint-capture path; the sort buffer is per-snapshot
pub fn put_map_u64_u32(w: &mut SnapWriter, map: &HashMap<u64, u32>) {
    let mut keys: Vec<u64> = map.keys().copied().collect();
    keys.sort_unstable();
    w.put_usize(keys.len());
    for k in keys {
        w.put_u64(k);
        if let Some(v) = map.get(&k) {
            w.put_u32(*v);
        }
    }
}

/// Restores a map written by [`put_map_u64_u32`].
///
/// # Errors
///
/// Returns [`SnapError`] on truncation.
pub fn get_map_u64_u32(r: &mut SnapReader<'_>, map: &mut HashMap<u64, u32>) -> Result<(), SnapError> {
    let n = r.get_usize()?;
    map.clear();
    for _ in 0..n {
        let k = r.get_u64()?;
        let v = r.get_u32()?;
        map.insert(k, v);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_markers() {
        let mut w = SnapWriter::new();
        w.put_marker("t");
        w.put_u8(7);
        w.put_bool(true);
        w.put_i8(-3);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX - 1);
        w.put_i64(-42);
        w.put_usize(12345);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        r.expect_marker("t").unwrap();
        assert_eq!(r.get_u8().unwrap(), 7);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_i8().unwrap(), -3);
        assert_eq!(r.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_usize().unwrap(), 12345);
        r.finish().unwrap();
    }

    #[test]
    fn rejects_truncation_trailing_garbage_and_bad_markers() {
        let mut w = SnapWriter::new();
        w.put_u64(1);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes[..4]);
        assert!(r.get_u64().is_err());

        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.get_u32().unwrap(), 1);
        assert!(r.finish().is_err());

        let mut w = SnapWriter::new();
        w.put_marker("abc");
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert!(r.expect_marker("abd").is_err());

        let mut r = SnapReader::new(&[2]);
        assert!(r.get_bool().is_err());
    }

    #[test]
    fn maps_serialize_sorted_and_keep_zero_entries() {
        let mut m = HashMap::new();
        m.insert(9u64, 0u32);
        m.insert(1, 4);
        m.insert(5, 2);
        let mut w = SnapWriter::new();
        put_map_u64_u32(&mut w, &m);
        let a = w.into_bytes();

        // Same contents inserted in a different order → same bytes.
        let mut m2 = HashMap::new();
        m2.insert(5u64, 2u32);
        m2.insert(9, 0);
        m2.insert(1, 4);
        let mut w2 = SnapWriter::new();
        put_map_u64_u32(&mut w2, &m2);
        assert_eq!(a, w2.into_bytes());

        let mut out = HashMap::new();
        let mut r = SnapReader::new(&a);
        get_map_u64_u32(&mut r, &mut out).unwrap();
        r.finish().unwrap();
        assert_eq!(out, m);
    }
}
