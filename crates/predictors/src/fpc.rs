//! Forward Probabilistic Counters (FPC).
//!
//! Perais & Seznec (HPCA 2014, \[25\] in the paper) gate value-prediction use
//! on a confidence counter that is *probabilistically* incremented: a 3-bit
//! counter emulates a much wider one by making forward transitions succeed
//! only with probability `v[k]`. The EOLE paper uses
//! `v = {1, 1/32, 1/32, 1/32, 1/32, 1/64, 1/64}`, which makes the expected
//! number of consecutive correct predictions needed to saturate ≈ 257,
//! pushing the misprediction rate of *used* predictions low enough that
//! squash recovery is affordable.

use crate::rng::SimRng;

/// The probability vector from the EOLE paper (§4.2): entry `k` is the
/// denominator `n` of the probability `1/n` of the `k → k+1` transition.
pub const EOLE_FPC_VECTOR: [u64; 7] = [1, 32, 32, 32, 32, 64, 64];

/// Number of confidence levels (3-bit counter: 0..=7).
pub const FPC_LEVELS: u8 = 7;

/// Shared transition-probability configuration for a predictor's counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FpcPolicy {
    denominators: [u64; 7],
}

impl FpcPolicy {
    /// The paper's vector.
    pub fn eole() -> Self {
        FpcPolicy { denominators: EOLE_FPC_VECTOR }
    }

    /// A custom vector (entry `k` = denominator of transition `k → k+1`).
    pub fn new(denominators: [u64; 7]) -> Self {
        FpcPolicy { denominators }
    }

    /// Deterministic counters (every transition always succeeds) — useful
    /// for tests and as an ablation of probabilistic updates.
    pub fn always() -> Self {
        FpcPolicy { denominators: [1; 7] }
    }

    /// Expected number of consecutive correct updates to saturate.
    pub fn expected_updates_to_saturate(&self) -> u64 {
        self.denominators.iter().sum()
    }
}

/// A single 3-bit forward probabilistic counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Fpc {
    level: u8,
}

impl Fpc {
    /// A freshly reset (zero-confidence) counter.
    pub fn new() -> Self {
        Fpc { level: 0 }
    }

    /// Current level (0–7).
    pub fn level(self) -> u8 {
        self.level
    }

    /// True when the counter is saturated — the only state in which a
    /// prediction may actually be *used* (written into the PRF).
    pub fn is_saturated(self) -> bool {
        self.level == FPC_LEVELS
    }

    /// Registers a correct prediction: moves forward with the policy's
    /// probability for the current level.
    pub fn on_correct(&mut self, policy: &FpcPolicy, rng: &mut SimRng) {
        if self.level < FPC_LEVELS && rng.one_in(policy.denominators[self.level as usize]) {
            self.level += 1;
        }
    }

    /// Registers an incorrect prediction: resets to zero confidence.
    pub fn on_incorrect(&mut self) {
        self.level = 0;
    }

    /// Storage cost in bits.
    pub const BITS: u64 = 3;
}

impl crate::snapshot::Snapshot for Fpc {
    fn snapshot(&self, w: &mut crate::snapshot::SnapWriter) {
        w.put_u8(self.level);
    }

    fn restore(
        &mut self,
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<(), crate::snapshot::SnapError> {
        let level = r.get_u8()?;
        if level > FPC_LEVELS {
            return Err(crate::snapshot::SnapError::new("fpc level out of range"));
        }
        self.level = level;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_unsaturated_and_resets() {
        let policy = FpcPolicy::always();
        let mut rng = SimRng::new(1);
        let mut c = Fpc::new();
        assert!(!c.is_saturated());
        for _ in 0..7 {
            c.on_correct(&policy, &mut rng);
        }
        assert!(c.is_saturated());
        c.on_incorrect();
        assert_eq!(c.level(), 0);
    }

    #[test]
    fn deterministic_policy_saturates_in_exactly_seven() {
        let policy = FpcPolicy::always();
        let mut rng = SimRng::new(1);
        let mut c = Fpc::new();
        for i in 1..=7u8 {
            c.on_correct(&policy, &mut rng);
            assert_eq!(c.level(), i);
        }
        // Saturated counters stay saturated on further correct updates.
        c.on_correct(&policy, &mut rng);
        assert_eq!(c.level(), 7);
    }

    #[test]
    fn eole_vector_needs_many_updates_on_average() {
        let policy = FpcPolicy::eole();
        assert_eq!(policy.expected_updates_to_saturate(), 1 + 32 * 4 + 64 * 2);
        let mut rng = SimRng::new(99);
        // Average over many counters.
        let trials = 200;
        let mut total = 0u64;
        for _ in 0..trials {
            let mut c = Fpc::new();
            let mut updates = 0u64;
            while !c.is_saturated() {
                c.on_correct(&policy, &mut rng);
                updates += 1;
            }
            total += updates;
        }
        let avg = total / trials;
        // E = 257; accept a broad band to keep the test robust.
        assert!((150..400).contains(&avg), "average updates to saturate = {avg}");
    }

    #[test]
    fn first_transition_is_always_taken_with_eole_vector() {
        let policy = FpcPolicy::eole();
        let mut rng = SimRng::new(5);
        let mut c = Fpc::new();
        c.on_correct(&policy, &mut rng);
        assert_eq!(c.level(), 1, "v[0] = 1 means 0→1 always succeeds");
    }
}
