//! The paper's §6.3 register-file study in miniature: banked PRFs
//! (Fig. 10) and restricted LE/VT read ports (Fig. 11), plus the §6.2
//! port/area arithmetic — one grid, one executor pass, two reports.
//!
//! Run with: `cargo run --release --example prf_banking [workload]`

use eole::prelude::*;
use eole_bench::{Executor, Grid, Runner};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "namd".to_string());
    let workload = workload_by_name(&name).expect("known workload");

    let grid = Grid::new()
        .runner(Runner { warmup: 30_000, measure: 120_000 })
        .workload(workload)
        .config(CoreConfig::eole_4_64()) // unbanked reference, first
        .configs([
            CoreConfig::eole_4_64_banked(2),
            CoreConfig::eole_4_64_banked(4),
            CoreConfig::eole_4_64_banked(8),
            CoreConfig::eole_4_64_ports(4, 2),
            CoreConfig::eole_4_64_ports(4, 3),
            CoreConfig::eole_4_64_ports(4, 4),
        ]);
    let results = Executor::new().run(&grid);
    let reference = results[0].expect_stats().ipc();

    let mut report = ExperimentReport::new(
        "prf_banking",
        format!("{name}: PRF banking & LE/VT ports (relative to unbanked EOLE_4_64)"),
    )
    .column("config")
    .column_unit("IPC", "µ-ops/cycle")
    .column_unit("relative", "×")
    .column_unit("rename PRF stalls", "count")
    .column_unit("LE/VT port stalls", "count");
    for r in &results[1..] {
        let s = r.expect_stats();
        report.add_row(vec![
            r.spec.config.name.as_str().into(),
            Cell::Num(s.ipc()),
            Cell::Num(s.ipc() / reference),
            Cell::Int(s.stall_prf),
            Cell::Int(s.levt_port_stalls),
        ]);
    }
    println!("{}", report.render_text());

    // §6.2/6.3 arithmetic: ports and relative area.
    let base6 = PrfPortModel::new(6, 8, 8, false, false);
    let vp6 = PrfPortModel::new(6, 8, 8, true, false);
    let eole4 = PrfPortModel::new(4, 8, 8, true, true);
    let mut ports = ExperimentReport::new(
        "prf_ports",
        "register-file ports (§6.2) and area model (R+W)(R+2W)",
    )
    .column("organization")
    .column_unit("reads", "ports")
    .column_unit("writes", "ports")
    .column_unit("relative area", "×");
    for (label, pc) in [
        ("Baseline_6_64 (monolithic)", base6.monolithic()),
        ("Baseline_VP_6_64 (monolithic)", vp6.monolithic()),
        ("EOLE_4_64 (monolithic)", eole4.monolithic()),
        ("EOLE_4_64 (4 banks, 4 LE/VT ports) per bank", eole4.banked(4, 4)),
    ] {
        ports.add_row(vec![
            label.into(),
            Cell::Int(pc.reads as u64),
            Cell::Int(pc.writes as u64),
            Cell::Num(pc.relative_area() / base6.monolithic().relative_area()),
        ]);
    }
    println!("{}", ports.render_text());
    println!("Banked EOLE lands on exactly the 6-issue baseline's per-bank ports (the paper's §6.3 punchline).");
    Ok(())
}
