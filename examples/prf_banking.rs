//! The paper's §6.3 register-file study in miniature: banked PRFs
//! (Fig. 10) and restricted LE/VT read ports (Fig. 11), plus the §6.2
//! port/area arithmetic.
//!
//! Run with: `cargo run --release --example prf_banking [workload]`

use eole::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "namd".to_string());
    let workload = workload_by_name(&name).expect("known workload");
    let trace = PreparedTrace::new(workload.trace(150_000)?);

    let run = |config: CoreConfig| -> Result<SimStats, SimError> {
        let mut sim = Simulator::new(&trace, config)?;
        sim.run(30_000)?;
        sim.begin_measurement();
        sim.run(u64::MAX)?;
        Ok(sim.stats())
    };

    let reference = run(CoreConfig::eole_4_64())?;
    let mut table = Table::new(
        format!("{name}: PRF banking & LE/VT ports (relative to unbanked EOLE_4_64)"),
        &["config", "IPC", "relative", "rename PRF stalls", "LE/VT port stalls"],
    );
    for config in [
        CoreConfig::eole_4_64_banked(2),
        CoreConfig::eole_4_64_banked(4),
        CoreConfig::eole_4_64_banked(8),
        CoreConfig::eole_4_64_ports(4, 2),
        CoreConfig::eole_4_64_ports(4, 3),
        CoreConfig::eole_4_64_ports(4, 4),
    ] {
        let label = config.name.clone();
        let s = run(config)?;
        table.add_row(vec![
            label,
            format!("{:.3}", s.ipc()),
            format!("{:.3}", s.ipc() / reference.ipc()),
            s.stall_prf.to_string(),
            s.levt_port_stalls.to_string(),
        ]);
    }
    println!("{}", table.to_text());

    // §6.2/6.3 arithmetic: ports and relative area.
    let base6 = PrfPortModel::new(6, 8, 8, false, false);
    let vp6 = PrfPortModel::new(6, 8, 8, true, false);
    let eole4 = PrfPortModel::new(4, 8, 8, true, true);
    let mut ports = Table::new(
        "register-file ports (§6.2) and area model (R+W)(R+2W)",
        &["organization", "reads", "writes", "relative area"],
    );
    for (label, pc) in [
        ("Baseline_6_64 (monolithic)", base6.monolithic()),
        ("Baseline_VP_6_64 (monolithic)", vp6.monolithic()),
        ("EOLE_4_64 (monolithic)", eole4.monolithic()),
        ("EOLE_4_64 (4 banks, 4 LE/VT ports) per bank", eole4.banked(4, 4)),
    ] {
        ports.add_row(vec![
            label.to_string(),
            pc.reads.to_string(),
            pc.writes.to_string(),
            format!("{:.2}x", pc.relative_area() / base6.monolithic().relative_area()),
        ]);
    }
    println!("{}", ports.to_text());
    println!("Banked EOLE lands on exactly the 6-issue baseline's per-bank ports (the paper's §6.3 punchline).");
    Ok(())
}
