//! Authoring a custom workload with the `ProgramBuilder` API and running
//! it through the EOLE pipeline.
//!
//! The kernel is a toy checksum loop whose load values stride — exactly
//! the kind of serial chain value prediction breaks.
//!
//! Run with: `cargo run --release --example custom_workload`

use eole::prelude::*;

fn build_kernel() -> Result<Program, Box<dyn std::error::Error>> {
    let r = IntReg::new;
    let mut b = ProgramBuilder::new();

    // A table whose entries stride by 3: highly value-predictable.
    let table: Vec<u64> = (0..4096u64).map(|i| i * 3).collect();
    let base = b.add_data_u64(&table);

    let (tb, i, v, sum, iter) = (r(1), r(2), r(3), r(4), r(5));
    b.movi(tb, base as i64);
    b.movi(i, 0);
    b.movi(sum, 0);
    b.movi(iter, 0);
    let top = b.label();
    b.bind(top);
    b.andi(i, i, 4095);
    // Serial: the loaded value feeds the next index.
    b.ld_idx(v, tb, i, 3, 0);
    b.add(sum, sum, v);
    b.shri(i, v, 1);
    b.addi(i, i, 1);
    b.addi(iter, iter, 1);
    b.blt_imm(iter, 1_000_000_000, top);
    b.halt();
    Ok(b.build()?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = build_kernel()?;
    println!("kernel: {} static µ-ops", program.len());

    // Functional check first: the machine executes architecturally.
    let mut machine = Machine::new(&program);
    machine.run(1000).err(); // budget exhaustion expected (endless loop)
    println!("after 1000 steps, sum = {}", machine.int_reg(IntReg::new(4)));

    // Timing: VP on vs off.
    let trace = PreparedTrace::new(generate_trace(&program, 120_000)?);
    let mut table = Table::new("custom kernel", &["config", "IPC", "VP used", "squashes"]);
    for config in [CoreConfig::baseline_6_64(), CoreConfig::baseline_vp_6_64(), CoreConfig::eole_4_64()]
    {
        let label = config.name.clone();
        let mut sim = Simulator::new(&trace, config)?;
        sim.run(30_000)?;
        sim.begin_measurement();
        sim.run(u64::MAX)?;
        let s = sim.stats();
        table.add_row(vec![
            label,
            format!("{:.3}", s.ipc()),
            s.vp_used.to_string(),
            s.vp_squashes.to_string(),
        ]);
    }
    println!("{}", table.to_text());
    Ok(())
}
