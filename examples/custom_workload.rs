//! Authoring a custom workload with the `ProgramBuilder` API and a custom
//! configuration with the `CoreConfig` builder, then running both through
//! the EOLE pipeline via the fallible `Runner` API.
//!
//! The kernel is a toy checksum loop whose load values stride — exactly
//! the kind of serial chain value prediction breaks.
//!
//! Run with: `cargo run --release --example custom_workload`

use eole::prelude::*;
use eole_bench::Runner;

fn build_kernel() -> Result<Program, Box<dyn std::error::Error>> {
    let r = IntReg::new;
    let mut b = ProgramBuilder::new();

    // A table whose entries stride by 3: highly value-predictable.
    let table: Vec<u64> = (0..4096u64).map(|i| i * 3).collect();
    let base = b.add_data_u64(&table);

    let (tb, i, v, sum, iter) = (r(1), r(2), r(3), r(4), r(5));
    b.movi(tb, base as i64);
    b.movi(i, 0);
    b.movi(sum, 0);
    b.movi(iter, 0);
    let top = b.label();
    b.bind(top);
    b.andi(i, i, 4095);
    // Serial: the loaded value feeds the next index.
    b.ld_idx(v, tb, i, 3, 0);
    b.add(sum, sum, v);
    b.shri(i, v, 1);
    b.addi(i, i, 1);
    b.addi(iter, iter, 1);
    b.blt_imm(iter, 1_000_000_000, top);
    b.halt();
    Ok(b.build()?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = build_kernel()?;
    println!("kernel: {} static µ-ops", program.len());

    // Functional check first: the machine executes architecturally.
    let mut machine = Machine::new(&program);
    machine.run(1000).err(); // budget exhaustion expected (endless loop)
    println!("after 1000 steps, sum = {}", machine.int_reg(IntReg::new(4)));

    // A configuration the paper never names: 5-issue, 56-entry IQ, full
    // EOLE — assembled with the builder instead of mutating a preset.
    let custom = CoreConfig::builder()
        .name("EOLE_5_56")
        .issue_width(5)
        .iq(56)
        .vp(VpConfig::paper())
        .eole_full()
        .build()
        .map_err(|e| format!("invalid custom config: {e}"))?;

    // Timing: VP off vs on vs EOLE variants, via the fallible Runner API.
    let runner = Runner { warmup: 30_000, measure: 90_000 };
    let trace = PreparedTrace::new(generate_trace(&program, runner.trace_len())?);
    let mut report = ExperimentReport::new("custom_kernel", "custom kernel")
        .column("config")
        .column_unit("IPC", "µ-ops/cycle")
        .column_unit("VP used", "count")
        .column_unit("squashes", "count")
        .column_unit("squash cost", "% cycles");
    for config in [
        CoreConfig::baseline_6_64(),
        CoreConfig::baseline_vp_6_64(),
        CoreConfig::eole_4_64(),
        custom,
    ] {
        let label = config.name.clone();
        let s = runner.try_run(&trace, config)?; // RunError, not a panic
        report.add_row(vec![
            label.into(),
            Cell::Num(s.ipc()),
            Cell::Int(s.vp_used),
            Cell::Int(s.vp_squashes),
            Cell::Num(s.vp_squash_cost_fraction() * 100.0),
        ]);
    }
    println!("{}", report.render_text());
    Ok(())
}
