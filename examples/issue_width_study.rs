//! The paper's §5.2 in miniature: how much does shrinking the OoO issue
//! width hurt, with and without EOLE?
//!
//! Expected shape (paper Fig. 7): the VP baseline loses noticeably at
//! 4-issue; EOLE at 4-issue stays close to the 6-issue baseline because
//! 10–60 % of µ-ops bypass the OoO engine entirely.
//!
//! The whole study is one [`Grid`]: 4 configurations × N workloads,
//! scheduled run-by-run across the executor's thread pool with the
//! prepared traces shared through its [`TraceCache`].
//!
//! Run with: `cargo run --release --example issue_width_study [workload ...]`

use eole::prelude::*;
use eole_bench::{Executor, Grid, Runner};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let names: Vec<String> = if args.is_empty() {
        vec!["applu".into(), "namd".into(), "crafty".into(), "hmmer".into()]
    } else {
        args
    };

    let configs = [
        CoreConfig::baseline_vp_6_64(), // normalization baseline, first
        CoreConfig::baseline_vp_4_64(),
        CoreConfig::eole_4_64(),
        CoreConfig::eole_6_64(),
    ];
    let mut grid = Grid::new()
        .runner(Runner { warmup: 30_000, measure: 120_000 })
        .configs(configs.clone());
    for name in &names {
        grid = grid.workload(workload_by_name(name).expect("known workload"));
    }

    let executor = Executor::new();
    let results = executor.run(&grid);

    let mut report = ExperimentReport::new(
        "issue_width_study",
        "issue-width study (speedup over Baseline_VP_6_64)",
    )
    .column("bench")
    .columns_unit(configs[1..].iter().map(|c| c.name.clone()), "×")
    .column_unit("offload@EOLE_4_64", "%");
    for (w, chunk) in names.iter().zip(results.chunks(configs.len())) {
        let stats: Vec<&SimStats> =
            chunk.iter().map(|r| r.expect_stats()).collect();
        let base = stats[0].ipc();
        report.add_row(vec![
            w.as_str().into(),
            Cell::Num(stats[1].ipc() / base),
            Cell::Num(stats[2].ipc() / base),
            Cell::Num(stats[3].ipc() / base),
            Cell::Num(stats[2].offload_fraction() * 100.0),
        ]);
    }
    println!("{}", report.render_text());
    eprintln!(
        "[{} runs, {} trace(s) prepared once each]",
        grid.len(),
        executor.cache().generated()
    );
    Ok(())
}
