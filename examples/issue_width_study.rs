//! The paper's §5.2 in miniature: how much does shrinking the OoO issue
//! width hurt, with and without EOLE?
//!
//! Expected shape (paper Fig. 7): the VP baseline loses noticeably at
//! 4-issue; EOLE at 4-issue stays close to the 6-issue baseline because
//! 10–60 % of µ-ops bypass the OoO engine entirely.
//!
//! Run with: `cargo run --release --example issue_width_study [workload ...]`

use eole::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let names: Vec<String> = if args.is_empty() {
        vec!["applu".into(), "namd".into(), "crafty".into(), "hmmer".into()]
    } else {
        args
    };

    let mut table = Table::new(
        "issue-width study (speedup over Baseline_VP_6_64)",
        &["bench", "Baseline_VP_4_64", "EOLE_4_64", "EOLE_6_64", "offload@EOLE"],
    );
    for name in &names {
        let workload = workload_by_name(name).expect("known workload");
        let trace = PreparedTrace::new(workload.trace(150_000)?);
        let ipc = |config: CoreConfig| -> Result<(f64, f64), SimError> {
            let mut sim = Simulator::new(&trace, config)?;
            sim.run(30_000)?;
            sim.begin_measurement();
            sim.run(u64::MAX)?;
            Ok((sim.stats().ipc(), sim.stats().offload_fraction()))
        };
        let (base, _) = ipc(CoreConfig::baseline_vp_6_64())?;
        let (vp4, _) = ipc(CoreConfig::baseline_vp_4_64())?;
        let (eole4, off) = ipc(CoreConfig::eole_4_64())?;
        let (eole6, _) = ipc(CoreConfig::eole_6_64())?;
        table.add_row(vec![
            name.clone(),
            format!("{:.3}", vp4 / base),
            format!("{:.3}", eole4 / base),
            format!("{:.3}", eole6 / base),
            format!("{:.1}%", off * 100.0),
        ]);
    }
    println!("{}", table.to_text());
    Ok(())
}
