//! Quickstart: simulate one workload on the paper's three headline
//! configurations and print IPC plus the EOLE offload breakdown.
//!
//! Run with: `cargo run --release --example quickstart [workload]`

use eole::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "namd".to_string());
    let workload = workload_by_name(&name)
        .unwrap_or_else(|| panic!("unknown workload {name}; try one of Table 3's names"));
    println!("workload: {} — {}", workload.name, workload.description);

    let trace = PreparedTrace::new(workload.trace(150_000)?);
    println!("trace: {} µ-ops\n", trace.len());

    let configs = [
        CoreConfig::baseline_6_64(),
        CoreConfig::baseline_vp_6_64(),
        CoreConfig::eole_4_64(),
    ];

    let mut table = Table::new(
        format!("{name}: baseline vs VP vs EOLE"),
        &["config", "IPC", "VP coverage", "VP accuracy", "early", "late ALU", "late br", "offload"],
    );
    for config in configs {
        let label = config.name.clone();
        let mut sim = Simulator::new(&trace, config)?;
        sim.run(50_000)?; // warmup
        sim.begin_measurement();
        sim.run(u64::MAX)?;
        let s = sim.stats();
        table.add_row(vec![
            label,
            format!("{:.3}", s.ipc()),
            format!("{:.1}%", s.vp_coverage() * 100.0),
            format!("{:.3}%", s.vp_accuracy() * 100.0),
            format!("{:.1}%", s.early_exec_fraction() * 100.0),
            format!("{:.1}%", s.late_alu_fraction() * 100.0),
            format!("{:.1}%", s.late_branch_fraction() * 100.0),
            format!("{:.1}%", s.offload_fraction() * 100.0),
        ]);
    }
    println!("{}", table.to_text());
    println!("(EOLE_4_64 runs a 33% narrower out-of-order engine than Baseline_VP_6_64.)");
    Ok(())
}
