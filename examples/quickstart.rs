//! Quickstart: simulate one workload on the paper's three headline
//! configurations — described as a [`Grid`], executed by the job-queue
//! [`Executor`], reported as an [`ExperimentReport`].
//!
//! Run with: `cargo run --release --example quickstart [workload]`

use eole::prelude::*;
use eole_bench::{Executor, Grid, Runner};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "namd".to_string());
    let workload = workload_by_name(&name)
        .unwrap_or_else(|| panic!("unknown workload {name}; try one of Table 3's names"));
    println!("workload: {} — {}", workload.name, workload.description);

    let grid = Grid::new()
        .runner(Runner { warmup: 50_000, measure: 100_000 })
        .workload(workload)
        .configs([
            CoreConfig::baseline_6_64(),
            CoreConfig::baseline_vp_6_64(),
            CoreConfig::eole_4_64(),
        ]);
    let executor = Executor::new();
    let results = executor.run(&grid);
    println!(
        "trace: prepared once, shared across {} configs\n",
        grid.config_list().len()
    );

    let mut report = ExperimentReport::new("quickstart", format!("{name}: baseline vs VP vs EOLE"))
        .column("config")
        .column_unit("IPC", "µ-ops/cycle")
        .column_unit("VP coverage", "%")
        .column_unit("VP accuracy", "%")
        .column_unit("early", "%")
        .column_unit("late ALU", "%")
        .column_unit("late br", "%")
        .column_unit("offload", "%");
    for r in &results {
        let s = r.outcome.as_ref().map_err(|e| e.to_string())?;
        report.add_row(vec![
            r.spec.config.name.as_str().into(),
            Cell::Num(s.ipc()),
            Cell::Num(s.vp_coverage() * 100.0),
            Cell::Num(s.vp_accuracy() * 100.0),
            Cell::Num(s.early_exec_fraction() * 100.0),
            Cell::Num(s.late_alu_fraction() * 100.0),
            Cell::Num(s.late_branch_fraction() * 100.0),
            Cell::Num(s.offload_fraction() * 100.0),
        ]);
    }
    println!("{}", report.render_text());
    println!("(EOLE_4_64 runs a 33% narrower out-of-order engine than Baseline_VP_6_64.)");
    println!("\nThe same report as machine-readable JSON:\n{}", report.to_json());
    Ok(())
}
