//! Offline comparison of every value predictor in the crate (the §2
//! taxonomy: computational vs context-based) on real workload value
//! streams.
//!
//! Coverage = fraction of eligible µ-ops with a *saturated-confidence*
//! prediction (the only ones the pipeline may use); accuracy = correctness
//! of those. The FPC design goal is accuracy ≈ 100 % at whatever coverage
//! the program's value locality allows.
//!
//! Run with: `cargo run --release --example predictor_showdown [workload]`

use eole::predictors::history::BranchHistory;
use eole::predictors::value::{
    evaluate_stream, DVtage, Fcm, LastValue, StridePredictor, TwoDeltaStride, ValuePredictor,
    Vtage, VtageTwoDeltaStride,
};
use eole::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "wupwise".to_string());
    let workload = workload_by_name(&name).expect("known workload");
    let trace = workload.trace(200_000)?;
    let history = BranchHistory::from_outcomes(&trace.branch_outcomes);

    // The (pc, history position, value) stream of VP-eligible µ-ops.
    let stream: Vec<(u64, u32, u64)> = trace
        .insts
        .iter()
        .filter(|d| d.inst.is_vp_eligible())
        .map(|d| (d.pc as u64 * 4, d.bhist_pos, d.result))
        .collect();
    println!("workload {name}: {} eligible µ-ops of {}\n", stream.len(), trace.insts.len());

    let mut predictors: Vec<Box<dyn ValuePredictor>> = vec![
        Box::new(LastValue::new(8192, 1)),
        Box::new(StridePredictor::new(8192, 2)),
        Box::new(TwoDeltaStride::paper(3)),
        Box::new(Fcm::new(8192, 8192, 4)),
        Box::new(Vtage::paper(5)),
        Box::new(VtageTwoDeltaStride::paper(6)),
        Box::new(DVtage::paper(4, 4, 7)),
    ];

    let mut report = ExperimentReport::new("predictor_showdown", "value predictor showdown")
        .column("predictor")
        .column_unit("size", "KB")
        .column_unit("coverage", "%")
        .column_unit("accuracy", "%")
        .column_unit("raw correct", "%");
    for p in predictors.iter_mut() {
        let stats = evaluate_stream(p.as_mut(), &history, stream.iter().copied());
        report.add_row(vec![
            p.name().into(),
            Cell::Num(p.storage_bits() as f64 / 8.0 / 1024.0),
            Cell::Num(stats.coverage() * 100.0),
            Cell::Num(stats.accuracy() * 100.0),
            Cell::Num(stats.correct as f64 / stats.attempted as f64 * 100.0),
        ]);
    }
    println!("{}", report.render_text());
    // The same numbers, machine-readable (full precision, stdout).
    println!("{}", report.to_csv());
    Ok(())
}
