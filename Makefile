# Tier-1 and friends as one-word commands. `make check` = the full gate.

.PHONY: build test bench lint check experiments experiments-json perf clean

build:
	cargo build --release

test:
	cargo test -q

bench:
	cargo bench --workspace

# Clippy plus the in-tree analyzer (rule catalog in LINTS.md).
lint:
	cargo clippy --workspace --all-targets -- -D warnings
	cargo run --release -p eole-lint -- --check

check: build test lint

# Regenerate every table/figure of the paper quickly.
experiments:
	cargo run --release -p eole-bench --bin experiments -- all --quick

# Same, as a machine-readable report set (schema in EXPERIMENTS.md).
experiments-json:
	cargo run --release -p eole-bench --bin experiments -- all --quick --format json --out results.json

# Steady-state simulator throughput on the quick suite, against the
# committed baseline (schema + methodology in PERF.md).
perf:
	cargo run --release -p eole-bench --bin sim-throughput -- --baseline BENCH_throughput.json --out BENCH_throughput.json

clean:
	cargo clean
