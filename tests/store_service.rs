//! End-to-end `eole-stored` integration: concurrent Sessions sharing one
//! daemon must single-flight every unique RunKey (exactly one simulation
//! fleet-wide), produce results byte-identical to a store-less serial
//! run, serve a warm re-run with 100% hits — and degrade gracefully to
//! local simulation when the daemon dies mid-run.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use eole_bench::store::{render_result_payload, RunKey};
use eole_bench::{Format, Grid, Runner, Session};
use eole_core::config::CoreConfig;
use eole_store_service::{ServerConfig, ServerHandle, StoreServer};

fn small_grid() -> Grid {
    Grid::new()
        .runner(Runner::quick())
        .configs([CoreConfig::baseline_6_64(), CoreConfig::eole_4_64()])
        .workload_names(&["gzip", "namd"])
}

fn temp_dir(tag: &str) -> String {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "eole-stored-e2e-{}-{}-{tag}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir.to_string_lossy().into_owned()
}

fn spawn_daemon(dir: &str) -> ServerHandle {
    StoreServer::bind("127.0.0.1:0", ServerConfig::new(dir)).expect("bind loopback").spawn()
}

/// The store-less serial truth: per-cell payload bytes (the same
/// `eole-result/v2` rendering every store path round-trips through, so
/// payload equality is byte-identity for everything downstream).
fn reference_payloads() -> HashMap<String, String> {
    let session = Session::builder().runner(Runner::quick()).threads(2).build().unwrap();
    session
        .run(&small_grid())
        .into_iter()
        .map(|r| {
            let key = RunKey::of(&r.spec);
            let stats = r.outcome.expect("reference run succeeds");
            (r.spec.label(), render_result_payload(&key, &stats))
        })
        .collect()
}

fn payloads_of(results: Vec<eole_bench::RunResult>) -> HashMap<String, String> {
    results
        .into_iter()
        .map(|r| {
            let key = RunKey::of(&r.spec);
            let stats = r.outcome.expect("run succeeds");
            (r.spec.label(), render_result_payload(&key, &stats))
        })
        .collect()
}

#[test]
fn concurrent_sessions_single_flight_and_match_the_serial_run_byte_for_byte() {
    let reference = reference_payloads();
    let dir = temp_dir("single-flight");
    let daemon = spawn_daemon(&dir);
    let url = format!("tcp://{}", daemon.addr());

    // Four Sessions race the same cold grid through one daemon.
    const SESSIONS: usize = 4;
    let total_sims = AtomicUsize::new(0);
    let per_cell_sims: Vec<(String, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..SESSIONS)
            .map(|_| {
                let url = url.clone();
                scope.spawn(move || {
                    let session = Session::builder()
                        .runner(Runner::quick())
                        .threads(2)
                        .store_dir(url)
                        .build()
                        .unwrap();
                    let payloads = payloads_of(session.run(&small_grid()));
                    let summary = session.store_summary().expect("store attached");
                    assert!(!summary.degraded, "healthy daemon must not degrade");
                    assert_eq!(
                        summary.hits + summary.sims,
                        payloads.len(),
                        "every cell is a hit or a simulation"
                    );
                    (payloads, summary.sims)
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| {
                let (payloads, sims) = h.join().expect("session thread");
                total_sims.fetch_add(sims, Ordering::Relaxed);
                payloads.into_iter()
            })
            .collect()
    });

    // Byte-identity: every session's every cell matches the serial truth.
    assert_eq!(per_cell_sims.len(), SESSIONS * reference.len());
    for (label, payload) in &per_cell_sims {
        assert_eq!(payload, &reference[label], "{label}: payload differs from serial run");
    }
    // Single-flight: exactly one simulation per unique key, fleet-wide.
    assert_eq!(
        total_sims.load(Ordering::Relaxed),
        reference.len(),
        "N sessions racing a cold key must simulate it exactly once"
    );
    assert_eq!(daemon.stats().leases_granted as usize, reference.len());

    // Warm re-run: a fresh session is served entirely from the daemon.
    let warm = Session::builder()
        .runner(Runner::quick())
        .threads(2)
        .store_dir(url.clone())
        .build()
        .unwrap();
    let warm_payloads = payloads_of(warm.run(&small_grid()));
    for (label, payload) in &warm_payloads {
        assert_eq!(payload, &reference[label]);
    }
    assert_eq!(warm.executor().simulated(), 0, "warm re-run must be 100% hits");
    assert_eq!(warm.executor().store_hits(), reference.len());

    // The report-set header carries the flat store block, and stripping
    // it (the CI byte-compare discipline) restores the store-less bytes.
    let with_store = warm.render(&[], Format::Json);
    assert!(with_store.contains(",\"store\":{\"hits\":4,\"misses\":0,\"sims\":0,"));
    let stripped = {
        let start = with_store.find(",\"store\":{").unwrap();
        let end = start + with_store[start..].find('}').unwrap() + 1;
        format!("{}{}", &with_store[..start], &with_store[end..])
    };
    let store_less = Session::new(Runner::quick()).render(&[], Format::Json);
    assert_eq!(stripped, store_less, "store block must strip back to the v1 bytes");

    daemon.shutdown();
}

#[test]
fn daemon_loss_mid_run_degrades_to_local_simulation() {
    let reference = reference_payloads();
    let dir = temp_dir("daemon-loss");
    let daemon = spawn_daemon(&dir);

    // The session connects while the daemon is alive…
    let session = Session::builder()
        .runner(Runner::quick())
        .threads(2)
        .store_dir(format!("tcp://{}", daemon.addr()))
        .build()
        .unwrap();
    // …then the daemon is killed before any run starts.
    daemon.shutdown();

    // The run must complete — locally, with the exact serial results —
    // instead of failing or hanging on the dead daemon.
    let payloads = payloads_of(session.run(&small_grid()));
    for (label, payload) in &payloads {
        assert_eq!(payload, &reference[label], "{label}: degraded run must stay correct");
    }
    assert_eq!(session.executor().simulated(), reference.len(), "all cells simulated locally");
    let summary = session.store_summary().expect("store attached");
    assert!(summary.degraded, "losing the daemon must flip the degraded flag");
    assert!(session.accounting().contains("DEGRADED"), "{}", session.accounting());
    let rendered = session.render(&[], Format::Json);
    assert!(rendered.contains("\"degraded\":true"), "{rendered}");
}

/// Warm checkpoints ride the daemon end to end: a real captured
/// [`WarmState`] published by one client is served to another, decodes,
/// and restores bit-identically — the daemon is payload-agnostic, so
/// `eole-warmstate/v1` needs no server-side support, only the disjoint
/// `warm__` key namespace.
///
/// [`WarmState`]: eole_core::pipeline::WarmState
#[test]
fn warm_checkpoints_round_trip_through_the_daemon() {
    use eole_bench::{RemoteStore, ResultStore, RunSpec, WarmKey};
    use eole_core::pipeline::{Simulator, WarmState};
    use eole_workloads::workload_by_name;

    let dir = temp_dir("warmstate");
    let daemon = spawn_daemon(&dir);
    let runner = Runner::quick();
    let spec = RunSpec {
        config: CoreConfig::eole_6_64(),
        workload: workload_by_name("gzip").unwrap(),
        runner,
        seed: 0,
    };
    let trace = runner.try_prepare(&spec.workload).unwrap();
    let mut sim = Simulator::new(&trace, spec.config.clone()).unwrap();
    sim.functional_warm(7_500);
    let warm = sim.capture_warm();
    let key = WarmKey::of(&spec, 7_500);

    let producer = RemoteStore::connect(&daemon.addr().to_string()).unwrap();
    // Cold key: the daemon grants this client the lease (a `None`,
    // meaning *build it*)…
    assert!(producer.load_warm(&key).is_none());
    // …and the publish releases it.
    producer.save_warm(&key, warm.as_bytes()).unwrap();

    // A second session's client is served the identical bytes, which
    // restore into a simulator bit-identically to the original capture.
    let consumer = RemoteStore::connect(&daemon.addr().to_string()).unwrap();
    let bytes = consumer.load_warm(&key).expect("published checkpoint is served");
    let decoded = WarmState::from_bytes(bytes).expect("payload decodes");
    let mut restored = Simulator::new(&trace, spec.config.clone()).unwrap();
    restored.restore_warm(&decoded).expect("restore succeeds");
    assert_eq!(restored.capture_warm().as_bytes(), warm.as_bytes());

    // A different position is a different wire key — cold, not served.
    assert!(consumer.load_warm(&WarmKey::of(&spec, 9_999)).is_none());
    // The configuration participates in the key (stem and digest), so
    // the same position under another config is cold too — a checkpoint
    // can never be served across configurations.
    let other = RunSpec { config: CoreConfig::baseline_6_64(), ..spec.clone() };
    assert!(consumer.load_warm(&WarmKey::of(&other, 7_500)).is_none());
    // Release the leases those cold misses granted, so shutdown is clean.
    consumer.abandon_warm(&WarmKey::of(&spec, 9_999));
    consumer.abandon_warm(&WarmKey::of(&other, 7_500));
    assert!(!producer.degraded() && !consumer.degraded());
    daemon.shutdown();
}

#[test]
fn dead_daemon_at_connect_time_is_a_loud_typed_error() {
    // Degradation covers daemons that *die*; a daemon that never existed
    // is a user error and must fail the build step, not silently run
    // store-less.
    let err = Session::builder()
        .runner(Runner::quick())
        .store_dir("tcp://127.0.0.1:1") // nothing listens on port 1
        .build()
        .unwrap_err();
    assert!(err.contains("connect result store"), "{err}");
}
