//! Canonical run identity, end to end.
//!
//! Covers the contracts the result-caching redesign leans on:
//!
//! * **Digest stability** — known configurations map to known hex digests
//!   forever (goldens below; a diff here means either the canonical
//!   format marker was bumped intentionally, or identity silently broke).
//! * **Digest sensitivity** — every builder setter changes the digest
//!   (proptest-style sweep), so no configuration axis can alias another
//!   in the store.
//! * **Shard determinism** — an `n`-way partition of a grid is disjoint,
//!   covers the grid, and is independent of thread counts and processes.
//! * **`DirStore` behavior** — hit/miss/corrupt-file recovery, and the
//!   headline property: a sharded populate + merged read-back produces
//!   results identical to an unsharded run while simulating nothing.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use eole_bench::{
    DirStore, Executor, Grid, MemStore, Plan, ResultStore, RunKey, RunSpec, Runner, Session,
    Shard,
};
use eole_core::canon::SIM_FINGERPRINT_VERSION;
use eole_core::config::{CoreConfig, EoleConfig, FuConfig, ValuePredictorKind, VpConfig};
use proptest::prelude::*;

// ---- digest stability -----------------------------------------------------

/// Golden content digests of the presets under the canonical
/// serialization format `eole-core-config/v2` (v2 added the `VpConfig`
/// block-front fields — block size, banks, speculative-window bound —
/// in PR 5; the v1 table was regenerated with
/// `fingerprints --digests`, as the format-bump protocol requires).
///
/// These must never drift: `DirStore` filenames embed them, so a silent
/// digest change would orphan every stored result while claiming a cache
/// miss. Changing the canonical format is allowed — bump the format
/// marker in `eole_core::canon`, regenerate this table, and say so in
/// the PR.
#[rustfmt::skip]
const GOLDEN_DIGESTS: [(&str, &str); 13] = [
    ("Baseline_6_64", "08fc4b38732fe42c"),
    ("Baseline_VP_6_64", "07bfd3568c8e3d29"),
    ("Baseline_VP_4_64", "3da6b6251695ff0d"),
    ("Baseline_VP_6_48", "f8d911f3c644591f"),
    ("EOLE_6_64", "2f60b433787cc2e3"),
    ("EOLE_4_64", "e4ad4e528af13c3f"),
    ("EOLE_6_48", "0b47a243af6fbd45"),
    ("EOLE_4_64_4banks", "68acbfe662d96405"),
    ("EOLE_4_64_4ports_4banks", "33800ff968d7b7a9"),
    ("OLE_4_64_4ports_4banks", "b94ed7297c65ff4c"),
    ("EOE_4_64_4ports_4banks", "da3e259796cc6217"),
    ("Baseline_DVTAGE_6_64", "b23ab8218f6ed9ee"),
    ("EOLE_DVTAGE_4_64", "36778713a5e0277a"),
];

#[test]
fn preset_digests_match_the_goldens() {
    let presets = CoreConfig::all_presets();
    assert_eq!(presets.len(), GOLDEN_DIGESTS.len());
    for (config, (name, hex)) in presets.iter().zip(GOLDEN_DIGESTS) {
        assert_eq!(config.name, name);
        assert_eq!(
            config.digest_hex(),
            hex,
            "{name}: canonical digest drifted — stored results would be orphaned"
        );
    }
}

#[test]
fn sim_fingerprint_version_is_pinned() {
    // Bumping this constant is a deliberate act (cycle behavior changed,
    // golden fingerprints regenerated); this test makes the bump show up
    // in the diff of a second file, PERF.md-style.
    assert_eq!(SIM_FINGERPRINT_VERSION, 1);
}

// ---- digest sensitivity: every builder setter ------------------------------

/// Every fluent setter of `CoreConfigBuilder`, as (name, mutation) pairs
/// over a valid baseline. Each must move the digest.
fn setter_mutations() -> Vec<(&'static str, CoreConfig)> {
    let b = || CoreConfig::baseline_vp_6_64().to_builder();
    vec![
        ("name", b().name("renamed").build().unwrap()),
        ("issue_width", b().issue_width(5).build().unwrap()),
        ("iq", b().iq(63).build().unwrap()),
        ("rob", b().rob(191).build().unwrap()),
        ("lsq", b().lsq(47, 48).build().unwrap()),
        ("front_width", b().front_width(7).build().unwrap()),
        ("prf", b().prf(256, 192).build().unwrap()),
        ("prf_banks", b().prf_banks(2).build().unwrap()),
        ("frontend_depth", b().frontend_depth(14).build().unwrap()),
        ("vp", {
            let vp = VpConfig { kind: ValuePredictorKind::Vtage, seed: 1, ..VpConfig::paper() };
            b().vp(vp).build().unwrap()
        }),
        ("vp_kind", b().vp_kind(ValuePredictorKind::Stride).build().unwrap()),
        ("vp_dvtage", b().vp_kind(ValuePredictorKind::DVtage).build().unwrap()),
        ("vp_block", b().vp_block(4, 4).build().unwrap()),
        ("vp_block_banks", b().vp_block(1, 4).build().unwrap()),
        ("vp_spec_window", b().vp_spec_window(Some(32)).build().unwrap()),
        ("no_vp", b().no_vp().build().unwrap()),
        ("eole", b().eole(EoleConfig { early: true, ..EoleConfig::off() }).build().unwrap()),
        ("eole_full", b().eole_full().build().unwrap()),
        ("ee_stages", b().eole_full().ee_stages(2).build().unwrap()),
        ("levt_ports", b().eole_full().levt_ports(Some(3)).build().unwrap()),
        ("ee_writes_per_bank", b().eole_full().ee_writes_per_bank(Some(2)).build().unwrap()),
        ("fu", {
            let mut fu = FuConfig::paper();
            fu.int_alu = 5;
            b().fu(fu).build().unwrap()
        }),
        ("mem", {
            let mut mem = eole_mem::hierarchy::HierarchyConfig::paper();
            mem.l1d.latency = 3;
            b().mem(mem).build().unwrap()
        }),
        ("branch_seed", b().branch_seed(0x1234).build().unwrap()),
        ("levt_depth_override", b().levt_depth_override(Some(0)).build().unwrap()),
    ]
}

#[test]
fn every_builder_setter_changes_the_digest() {
    let base = CoreConfig::baseline_vp_6_64();
    let mut seen = vec![(String::from("base"), base.digest())];
    for (setter, mutated) in setter_mutations() {
        let digest = mutated.digest();
        assert_ne!(digest, base.digest(), "setter `{setter}` did not change the digest");
        // Pairwise distinct, too: no two single-setter mutations alias.
        for (other, d) in &seen {
            assert_ne!(digest, *d, "`{setter}` collides with `{other}`");
        }
        seen.push((setter.to_string(), digest));
    }
}

proptest! {
    /// Randomized sweep over the numeric setters: any drawn change to a
    /// numeric axis moves the digest, and equal inputs produce equal
    /// digests (identity is value-based, never pointer/hash-state-based).
    #[test]
    fn numeric_setters_perturb_the_digest(
        (width, iq, rob, depth, seed) in (1usize..8, 16usize..128, 64u64..512, 5u64..25, 0u64..1u64<<40)
    ) {
        let base = CoreConfig::baseline_vp_6_64();
        let derived = base.clone().to_builder()
            .issue_width(width)
            .iq(iq)
            .rob(rob as usize)
            .frontend_depth(depth)
            .branch_seed(seed)
            .build()
            .unwrap();
        let twin = base.clone().to_builder()
            .issue_width(width)
            .iq(iq)
            .rob(rob as usize)
            .frontend_depth(depth)
            .branch_seed(seed)
            .build()
            .unwrap();
        prop_assert_eq!(derived.digest(), twin.digest());
        let differs = width != base.issue_width
            || iq != base.iq_entries
            || rob as usize != base.rob_entries
            || depth != base.frontend_depth
            || seed != base.branch_seed;
        prop_assert_eq!(derived.digest() != base.digest(), differs);
    }
}

// ---- shard determinism over a real grid -----------------------------------

fn small_grid() -> Grid {
    Grid::new()
        .runner(Runner::quick())
        .configs([
            CoreConfig::baseline_6_64(),
            CoreConfig::baseline_vp_6_64(),
            CoreConfig::eole_4_64(),
        ])
        .workload_names(&["gzip", "namd", "mcf"])
}

#[test]
fn shard_partitions_are_disjoint_cover_the_grid_and_ignore_thread_counts() {
    let grid = small_grid();
    let keys: Vec<RunKey> = grid.specs().iter().map(RunSpec::run_key).collect();
    for n in [1usize, 2, 3, 4, 7] {
        let plan = Plan::new(&grid, n);
        let shards = plan.shards();
        let total: usize = shards.iter().map(Vec::len).sum();
        assert_eq!(total, keys.len(), "n={n}: exact cover");
        for key in &keys {
            let owners: Vec<usize> = (1..=n)
                .filter(|&k| Shard::new(k, n).unwrap().owns(key))
                .collect();
            assert_eq!(owners.len(), 1, "n={n}: {key:?} needs exactly one owner");
        }
    }
    // Thread counts affect scheduling, never ownership: run each shard
    // with different worker counts and check the same cells simulated.
    let plan = Plan::new(&grid, 2);
    for k in 1..=2 {
        let expected: Vec<String> = plan.shard(k).iter().map(RunSpec::label).collect();
        for threads in [1usize, 4] {
            let exec = Executor::with_threads(threads).with_shard(Shard::new(k, 2).unwrap());
            let ran: Vec<String> = exec
                .run(&grid)
                .iter()
                .filter(|r| r.stats().is_ok())
                .map(|r| r.spec.label())
                .collect();
            assert_eq!(ran, expected, "shard {k}/2 with {threads} threads");
        }
    }
}

// ---- DirStore -------------------------------------------------------------

fn temp_store_dir(tag: &str) -> std::path::PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "eole-run-identity-{}-{}-{tag}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

#[test]
fn dir_store_hit_miss_and_corrupt_file_recovery() {
    let dir = temp_store_dir("recovery");
    let store = DirStore::open(&dir).unwrap();
    let spec = RunSpec {
        config: CoreConfig::baseline_6_64(),
        workload: eole_workloads::workload_by_name("gzip").unwrap(),
        runner: Runner::quick(),
        seed: 0,
    };
    let key = spec.run_key();
    // Miss on an empty store.
    assert!(store.load(&key).is_none());
    assert_eq!((store.hits(), store.misses(), store.corrupt()), (0, 1, 0));
    // Save + hit.
    let stats = eole_core::stats::SimStats { cycles: 123, committed: 456, ..Default::default() };
    store.save(&key, &stats).unwrap();
    assert_eq!(store.len(), 1);
    let back = store.load(&key).expect("stored entry must hit");
    assert_eq!((back.cycles, back.committed), (123, 456));
    assert_eq!(store.hits(), 1);
    // Corrupt the file on disk: the entry degrades to a miss...
    let file = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .find(|e| e.path().extension().is_some_and(|x| x == "json"))
        .unwrap()
        .path();
    std::fs::write(&file, "{ not json").unwrap();
    assert!(store.load(&key).is_none(), "corrupt entries are misses, not errors");
    assert_eq!(store.corrupt(), 1);
    // ...and the next save overwrites it cleanly.
    store.save(&key, &stats).unwrap();
    assert_eq!(store.load(&key).unwrap().cycles, 123);
    // A payload for a *different* key at the same path is also a miss
    // (belt-and-braces: the payload self-identifies).
    let mut other = spec.clone();
    other.seed = 9;
    let other_key = other.run_key();
    std::fs::copy(&file, dir.join(format!("{}.json", other_key.file_stem()))).unwrap();
    assert!(store.load(&other_key).is_none(), "foreign payloads must not be served");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stored_results_are_keyed_by_sim_version() {
    // A key with a different sim_version must not see entries written
    // under the current one — the "bump invalidates the store" contract.
    let dir = temp_store_dir("simver");
    let store = DirStore::open(&dir).unwrap();
    let spec = RunSpec {
        config: CoreConfig::baseline_6_64(),
        workload: eole_workloads::workload_by_name("gzip").unwrap(),
        runner: Runner::quick(),
        seed: 0,
    };
    let key = spec.run_key();
    store.save(&key, &Default::default()).unwrap();
    let bumped = RunKey { sim_version: key.sim_version + 1, ..key.clone() };
    assert_ne!(key.file_stem(), bumped.file_stem());
    assert!(store.load(&bumped).is_none());
    std::fs::remove_dir_all(&dir).ok();
}

// ---- the headline property ------------------------------------------------

/// Shard-populate into a `DirStore`, then read the whole grid back
/// merged: the merged results are identical to a fresh unsharded run and
/// cost zero simulations. This is the in-process twin of the CI step
/// that byte-compares `results.json` payloads across processes.
#[test]
fn sharded_populate_plus_merge_equals_unsharded_run_with_zero_sims() {
    let grid = small_grid();
    let fresh = Executor::with_threads(4).run(&grid);

    let dir = temp_store_dir("merge");
    // Populate: each shard in its own executor (own process, morally).
    for k in 1..=2 {
        let store: Arc<dyn ResultStore> = Arc::new(DirStore::open(&dir).unwrap());
        let exec = Executor::with_threads(2)
            .with_store(store)
            .with_shard(Shard::new(k, 2).unwrap());
        let results = exec.run(&grid);
        let ok = results.iter().filter(|r| r.stats().is_ok()).count();
        // Successes are either this shard's own simulations or cells the
        // earlier shard already put in the shared store.
        assert_eq!(
            ok,
            exec.simulated() + exec.store_hits(),
            "shard {k}: successes = own sims + store hits"
        );
        assert!(exec.simulated() > 0, "shard {k} owns a non-empty slice of this grid");
    }
    // Merge: unsharded executor over a warm store.
    let store: Arc<dyn ResultStore> = Arc::new(DirStore::open(&dir).unwrap());
    let warm = Executor::with_threads(4).with_store(store);
    let merged = warm.run(&grid);
    assert_eq!(warm.simulated(), 0, "a warm store serves the whole grid");
    assert_eq!(warm.store_hits(), grid.len());
    assert_eq!(warm.cache().generated(), 0, "no traces needed either");
    for (a, b) in fresh.iter().zip(&merged) {
        assert_eq!(a.spec.label(), b.spec.label());
        let (sa, sb) = (a.stats().unwrap(), b.stats().unwrap());
        assert_eq!(
            format!("{sa:?}"),
            format!("{sb:?}"),
            "{}: stored result must equal the fresh one on every counter",
            a.spec.label()
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The Plan-level merge produces the same vector executors produce,
/// proving the two merge paths (in-process `Plan::merge`, cross-process
/// store read-back) agree.
#[test]
fn plan_merge_agrees_with_store_merge() {
    let grid = small_grid();
    let plan = Plan::new(&grid, 2);
    let session = Session::builder().runner(Runner::quick()).threads(2).build().unwrap();
    let shard_results: Vec<_> =
        (1..=2).map(|k| session.run_specs(plan.shard(k))).collect();
    let merged = plan.merge(shard_results).unwrap();
    let fresh = session.run(&grid);
    assert_eq!(merged.len(), fresh.len());
    for (a, b) in merged.iter().zip(&fresh) {
        assert_eq!(a.spec.label(), b.spec.label());
        let (sa, sb) = (a.stats().unwrap(), b.stats().unwrap());
        assert_eq!(sa.cycles, sb.cycles, "{}", a.spec.label());
        assert_eq!(sa.committed, sb.committed);
    }
}

/// The MemStore path used for in-process dedup behaves like DirStore for
/// the executor (hit counters, zero re-simulation).
#[test]
fn mem_store_dedups_repeat_grids() {
    let store: Arc<dyn ResultStore> = Arc::new(MemStore::new());
    let grid = Grid::new()
        .runner(Runner::quick())
        .config(CoreConfig::baseline_6_64())
        .workload_names(&["gzip"]);
    let exec = Executor::with_threads(1).with_store(Arc::clone(&store));
    exec.run(&grid);
    exec.run(&grid);
    assert_eq!(exec.simulated(), 1);
    assert_eq!(exec.store_hits(), 1);
    assert_eq!(store.len(), 1);
}

/// Concurrent-writer hammer: several `DirStore` instances over the *same*
/// directory (the multi-process shape — e.g. two sharded sessions, or an
/// `eole-stored` daemon sharing its directory with a local `--store DIR`
/// run) write the same keys from many threads at once. Temp names carry
/// pid + a process-global counter, so instances can never collide on a
/// temp file; rename is atomic, so every read observes a complete payload
/// — never a torn one — and no stray `.tmp` litter survives.
#[test]
fn dir_store_survives_a_concurrent_writer_hammer() {
    let dir = temp_store_dir("hammer");
    let stores: Vec<DirStore> = (0..3).map(|_| DirStore::open(&dir).unwrap()).collect();
    let base = RunSpec {
        config: CoreConfig::baseline_6_64(),
        workload: eole_workloads::workload_by_name("gzip").unwrap(),
        runner: Runner::quick(),
        seed: 0,
    };
    let keys: Vec<RunKey> = (0..4)
        .map(|seed| {
            let mut spec = base.clone();
            spec.seed = seed;
            spec.run_key()
        })
        .collect();
    let rounds = 25;
    std::thread::scope(|scope| {
        // 3 instances × 4 threads each, all hammering all 4 keys.
        for (instance, store) in stores.iter().enumerate() {
            for thread in 0..4 {
                let keys = &keys;
                scope.spawn(move || {
                    for round in 0..rounds {
                        for key in keys {
                            let stats = eole_core::stats::SimStats {
                                cycles: (instance * 1000 + thread * 100 + round) as u64 + 1,
                                committed: key.seed + 1,
                                ..Default::default()
                            };
                            store.save(key, &stats).unwrap();
                            // Interleave reads: anything loaded mid-hammer
                            // must be a complete, self-consistent payload.
                            if let Some(back) = store.load(key) {
                                assert_eq!(back.committed, key.seed + 1, "torn payload");
                                assert!(back.cycles >= 1);
                            }
                        }
                    }
                });
            }
        }
    });
    // Every key holds exactly one complete entry; no temp litter remains.
    let reader = DirStore::open(&dir).unwrap();
    assert_eq!(reader.len(), keys.len());
    for key in &keys {
        assert_eq!(reader.load(key).unwrap().committed, key.seed + 1);
    }
    let stray: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp"))
        .collect();
    assert!(stray.is_empty(), "temp files must be consumed by rename: {stray:?}");
    std::fs::remove_dir_all(&dir).ok();
}
