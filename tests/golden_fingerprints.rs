//! Golden cycle-exactness fingerprints.
//!
//! The hot-loop refactor (flat `SeqRing` windows, scratch buffers, wakeup
//! filtering, idle-cycle fast-forward — see `PERF.md`) is required to be
//! a *pure* optimization: for every preset configuration and workload the
//! simulator must reproduce, bit for bit, the `(cycles, committed,
//! squashed)` counters the pre-refactor `VecDeque` simulator produced.
//! The 209 paper-preset rows were captured at commit 581994e (PR 2) with
//! the `fingerprints` tool and pin that contract forever — the PR 5
//! block-based predictor refactor (BeBoP/D-VTAGE) reproduced all of them
//! bit-for-bit, and appended 38 rows for the two new D-VTAGE presets
//! (`Baseline_DVTAGE_6_64`, `EOLE_DVTAGE_4_64`). Any future change that
//! moves one of these numbers is a *model* change and must say so —
//! regenerate with `cargo run --release -p eole-bench --bin fingerprints`
//! and justify the diff in the PR.
//!
//! Methodology: warmup 2 000 + measure 5 000 µ-ops (matches
//! `GOLDEN_RUNNER` in the tool), every preset of
//! `CoreConfig::all_presets()` over every Table 3 workload.

use std::collections::HashMap;

use eole_bench::Runner;
use eole_core::config::CoreConfig;
use eole_core::pipeline::Simulator;

const GOLDEN_RUNNER: Runner = Runner { warmup: 2_000, measure: 5_000 };

/// `(config, workload, cycles, committed, squashed)` — captured pre-refactor.
#[rustfmt::skip]
const FINGERPRINTS: [(&str, &str, u64, u64, u64); 247] = [
    ("Baseline_6_64", "gzip", 3009, 5001, 0),
    ("Baseline_VP_6_64", "gzip", 3012, 5001, 0),
    ("Baseline_VP_4_64", "gzip", 3235, 5001, 0),
    ("Baseline_VP_6_48", "gzip", 3012, 5001, 0),
    ("EOLE_6_64", "gzip", 2950, 5001, 0),
    ("EOLE_4_64", "gzip", 3159, 5001, 0),
    ("EOLE_6_48", "gzip", 2956, 5001, 0),
    ("EOLE_4_64_4banks", "gzip", 3159, 5001, 0),
    ("EOLE_4_64_4ports_4banks", "gzip", 3159, 5001, 0),
    ("OLE_4_64_4ports_4banks", "gzip", 3175, 5001, 0),
    ("EOE_4_64_4ports_4banks", "gzip", 3168, 5001, 0),
    ("Baseline_DVTAGE_6_64", "gzip", 3016, 5001, 0),
    ("EOLE_DVTAGE_4_64", "gzip", 3159, 5001, 0),
    ("Baseline_6_64", "wupwise", 3074, 5003, 0),
    ("Baseline_VP_6_64", "wupwise", 3059, 5003, 0),
    ("Baseline_VP_4_64", "wupwise", 3072, 5003, 0),
    ("Baseline_VP_6_48", "wupwise", 3070, 5003, 0),
    ("EOLE_6_64", "wupwise", 3075, 5003, 0),
    ("EOLE_4_64", "wupwise", 3071, 5003, 0),
    ("EOLE_6_48", "wupwise", 3074, 5003, 0),
    ("EOLE_4_64_4banks", "wupwise", 3071, 5003, 0),
    ("EOLE_4_64_4ports_4banks", "wupwise", 3071, 5002, 0),
    ("OLE_4_64_4ports_4banks", "wupwise", 3071, 5002, 0),
    ("EOE_4_64_4ports_4banks", "wupwise", 3072, 5003, 0),
    ("Baseline_DVTAGE_6_64", "wupwise", 3063, 5003, 0),
    ("EOLE_DVTAGE_4_64", "wupwise", 3055, 5003, 0),
    ("Baseline_6_64", "applu", 2926, 5000, 0),
    ("Baseline_VP_6_64", "applu", 2950, 5000, 0),
    ("Baseline_VP_4_64", "applu", 2926, 5000, 0),
    ("Baseline_VP_6_48", "applu", 2926, 5000, 0),
    ("EOLE_6_64", "applu", 2950, 5000, 0),
    ("EOLE_4_64", "applu", 2926, 5000, 0),
    ("EOLE_6_48", "applu", 2926, 5000, 0),
    ("EOLE_4_64_4banks", "applu", 2926, 5000, 0),
    ("EOLE_4_64_4ports_4banks", "applu", 2926, 5000, 0),
    ("OLE_4_64_4ports_4banks", "applu", 2926, 5000, 0),
    ("EOE_4_64_4ports_4banks", "applu", 2926, 5000, 0),
    ("Baseline_DVTAGE_6_64", "applu", 2950, 5000, 0),
    ("EOLE_DVTAGE_4_64", "applu", 2926, 5000, 0),
    ("Baseline_6_64", "vpr", 15774, 5001, 0),
    ("Baseline_VP_6_64", "vpr", 15774, 5001, 0),
    ("Baseline_VP_4_64", "vpr", 15775, 5001, 0),
    ("Baseline_VP_6_48", "vpr", 15774, 5001, 0),
    ("EOLE_6_64", "vpr", 15747, 5001, 0),
    ("EOLE_4_64", "vpr", 15775, 5001, 0),
    ("EOLE_6_48", "vpr", 15747, 5001, 0),
    ("EOLE_4_64_4banks", "vpr", 15775, 5001, 0),
    ("EOLE_4_64_4ports_4banks", "vpr", 15775, 5001, 0),
    ("OLE_4_64_4ports_4banks", "vpr", 15775, 5001, 0),
    ("EOE_4_64_4ports_4banks", "vpr", 15775, 5001, 0),
    ("Baseline_DVTAGE_6_64", "vpr", 15774, 5001, 0),
    ("EOLE_DVTAGE_4_64", "vpr", 15775, 5001, 0),
    ("Baseline_6_64", "art", 10343, 5000, 0),
    ("Baseline_VP_6_64", "art", 10351, 5000, 890),
    ("Baseline_VP_4_64", "art", 10351, 5000, 881),
    ("Baseline_VP_6_48", "art", 10351, 5000, 890),
    ("EOLE_6_64", "art", 10351, 5000, 612),
    ("EOLE_4_64", "art", 10351, 5000, 612),
    ("EOLE_6_48", "art", 10351, 5000, 612),
    ("EOLE_4_64_4banks", "art", 10351, 5000, 612),
    ("EOLE_4_64_4ports_4banks", "art", 10351, 5000, 612),
    ("OLE_4_64_4ports_4banks", "art", 10351, 5000, 612),
    ("EOE_4_64_4ports_4banks", "art", 10351, 5000, 890),
    ("Baseline_DVTAGE_6_64", "art", 10343, 5000, 0),
    ("EOLE_DVTAGE_4_64", "art", 10343, 5000, 0),
    ("Baseline_6_64", "crafty", 1114, 5004, 0),
    ("Baseline_VP_6_64", "crafty", 1114, 5004, 0),
    ("Baseline_VP_4_64", "crafty", 1445, 5004, 0),
    ("Baseline_VP_6_48", "crafty", 1115, 5004, 0),
    ("EOLE_6_64", "crafty", 1126, 5004, 0),
    ("EOLE_4_64", "crafty", 1255, 5004, 0),
    ("EOLE_6_48", "crafty", 1124, 5004, 0),
    ("EOLE_4_64_4banks", "crafty", 1255, 5004, 0),
    ("EOLE_4_64_4ports_4banks", "crafty", 1255, 5004, 0),
    ("OLE_4_64_4ports_4banks", "crafty", 1372, 5004, 0),
    ("EOE_4_64_4ports_4banks", "crafty", 1252, 5004, 0),
    ("Baseline_DVTAGE_6_64", "crafty", 1114, 5004, 0),
    ("EOLE_DVTAGE_4_64", "crafty", 1255, 5004, 0),
    ("Baseline_6_64", "parser", 91404, 5004, 0),
    ("Baseline_VP_6_64", "parser", 91404, 5004, 0),
    ("Baseline_VP_4_64", "parser", 91474, 5004, 0),
    ("Baseline_VP_6_48", "parser", 91404, 5004, 0),
    ("EOLE_6_64", "parser", 91404, 5004, 0),
    ("EOLE_4_64", "parser", 91404, 5004, 0),
    ("EOLE_6_48", "parser", 91404, 5004, 0),
    ("EOLE_4_64_4banks", "parser", 91404, 5004, 0),
    ("EOLE_4_64_4ports_4banks", "parser", 91404, 5004, 0),
    ("OLE_4_64_4ports_4banks", "parser", 91404, 5004, 0),
    ("EOE_4_64_4ports_4banks", "parser", 91404, 5004, 0),
    ("Baseline_DVTAGE_6_64", "parser", 91404, 5004, 0),
    ("EOLE_DVTAGE_4_64", "parser", 91404, 5004, 0),
    ("Baseline_6_64", "vortex", 11773, 5000, 0),
    ("Baseline_VP_6_64", "vortex", 11773, 5000, 0),
    ("Baseline_VP_4_64", "vortex", 11773, 5000, 0),
    ("Baseline_VP_6_48", "vortex", 11773, 5000, 0),
    ("EOLE_6_64", "vortex", 11773, 5000, 0),
    ("EOLE_4_64", "vortex", 11773, 5000, 0),
    ("EOLE_6_48", "vortex", 11773, 5000, 0),
    ("EOLE_4_64_4banks", "vortex", 11773, 5000, 0),
    ("EOLE_4_64_4ports_4banks", "vortex", 11773, 5000, 0),
    ("OLE_4_64_4ports_4banks", "vortex", 11773, 5000, 0),
    ("EOE_4_64_4ports_4banks", "vortex", 11773, 5000, 0),
    ("Baseline_DVTAGE_6_64", "vortex", 11773, 5000, 0),
    ("EOLE_DVTAGE_4_64", "vortex", 11773, 5000, 0),
    ("Baseline_6_64", "bzip2", 14432, 5000, 0),
    ("Baseline_VP_6_64", "bzip2", 14449, 5005, 0),
    ("Baseline_VP_4_64", "bzip2", 14449, 5005, 0),
    ("Baseline_VP_6_48", "bzip2", 14449, 5005, 0),
    ("EOLE_6_64", "bzip2", 14449, 5005, 0),
    ("EOLE_4_64", "bzip2", 14449, 5005, 0),
    ("EOLE_6_48", "bzip2", 14449, 5005, 0),
    ("EOLE_4_64_4banks", "bzip2", 14449, 5005, 0),
    ("EOLE_4_64_4ports_4banks", "bzip2", 14449, 5005, 0),
    ("OLE_4_64_4ports_4banks", "bzip2", 14449, 5005, 0),
    ("EOE_4_64_4ports_4banks", "bzip2", 14449, 5005, 0),
    ("Baseline_DVTAGE_6_64", "bzip2", 14432, 5000, 0),
    ("EOLE_DVTAGE_4_64", "bzip2", 14432, 5000, 0),
    ("Baseline_6_64", "gcc", 5174, 5003, 0),
    ("Baseline_VP_6_64", "gcc", 5126, 5003, 0),
    ("Baseline_VP_4_64", "gcc", 5139, 5003, 0),
    ("Baseline_VP_6_48", "gcc", 5129, 5003, 0),
    ("EOLE_6_64", "gcc", 5126, 5003, 0),
    ("EOLE_4_64", "gcc", 5126, 5003, 0),
    ("EOLE_6_48", "gcc", 5128, 5003, 0),
    ("EOLE_4_64_4banks", "gcc", 5126, 5003, 0),
    ("EOLE_4_64_4ports_4banks", "gcc", 5126, 5003, 0),
    ("OLE_4_64_4ports_4banks", "gcc", 5126, 5003, 0),
    ("EOE_4_64_4ports_4banks", "gcc", 5129, 5003, 0),
    ("Baseline_DVTAGE_6_64", "gcc", 5174, 5003, 0),
    ("EOLE_DVTAGE_4_64", "gcc", 5195, 5003, 0),
    ("Baseline_6_64", "gamess", 4943, 5000, 0),
    ("Baseline_VP_6_64", "gamess", 4943, 5000, 0),
    ("Baseline_VP_4_64", "gamess", 4943, 5000, 0),
    ("Baseline_VP_6_48", "gamess", 4943, 5000, 0),
    ("EOLE_6_64", "gamess", 4943, 5000, 0),
    ("EOLE_4_64", "gamess", 4943, 5000, 0),
    ("EOLE_6_48", "gamess", 4943, 5000, 0),
    ("EOLE_4_64_4banks", "gamess", 4943, 5000, 0),
    ("EOLE_4_64_4ports_4banks", "gamess", 4943, 5000, 0),
    ("OLE_4_64_4ports_4banks", "gamess", 4943, 5000, 0),
    ("EOE_4_64_4ports_4banks", "gamess", 4943, 5000, 0),
    ("Baseline_DVTAGE_6_64", "gamess", 4943, 5000, 0),
    ("EOLE_DVTAGE_4_64", "gamess", 4943, 5000, 0),
    ("Baseline_6_64", "mcf", 99083, 5000, 0),
    ("Baseline_VP_6_64", "mcf", 99082, 5000, 0),
    ("Baseline_VP_4_64", "mcf", 99082, 5000, 0),
    ("Baseline_VP_6_48", "mcf", 99082, 5000, 0),
    ("EOLE_6_64", "mcf", 99083, 5000, 0),
    ("EOLE_4_64", "mcf", 99083, 5000, 0),
    ("EOLE_6_48", "mcf", 99083, 5000, 0),
    ("EOLE_4_64_4banks", "mcf", 99083, 5000, 0),
    ("EOLE_4_64_4ports_4banks", "mcf", 99083, 5000, 0),
    ("OLE_4_64_4ports_4banks", "mcf", 99083, 5000, 0),
    ("EOE_4_64_4ports_4banks", "mcf", 99082, 5000, 0),
    ("Baseline_DVTAGE_6_64", "mcf", 99083, 5000, 0),
    ("EOLE_DVTAGE_4_64", "mcf", 99083, 5005, 250),
    ("Baseline_6_64", "milc", 12198, 5000, 0),
    ("Baseline_VP_6_64", "milc", 12198, 5000, 0),
    ("Baseline_VP_4_64", "milc", 12198, 5000, 0),
    ("Baseline_VP_6_48", "milc", 12202, 5000, 0),
    ("EOLE_6_64", "milc", 12198, 5000, 0),
    ("EOLE_4_64", "milc", 12198, 5000, 0),
    ("EOLE_6_48", "milc", 12202, 5000, 0),
    ("EOLE_4_64_4banks", "milc", 12198, 5000, 0),
    ("EOLE_4_64_4ports_4banks", "milc", 12198, 5000, 0),
    ("OLE_4_64_4ports_4banks", "milc", 12198, 5000, 0),
    ("EOE_4_64_4ports_4banks", "milc", 12198, 5000, 0),
    ("Baseline_DVTAGE_6_64", "milc", 12198, 5000, 0),
    ("EOLE_DVTAGE_4_64", "milc", 12198, 5000, 0),
    ("Baseline_6_64", "namd", 9198, 5003, 0),
    ("Baseline_VP_6_64", "namd", 9048, 5003, 0),
    ("Baseline_VP_4_64", "namd", 9050, 5003, 0),
    ("Baseline_VP_6_48", "namd", 9048, 5003, 0),
    ("EOLE_6_64", "namd", 9048, 5003, 0),
    ("EOLE_4_64", "namd", 9009, 5003, 0),
    ("EOLE_6_48", "namd", 9048, 5003, 0),
    ("EOLE_4_64_4banks", "namd", 9009, 5003, 0),
    ("EOLE_4_64_4ports_4banks", "namd", 9009, 5002, 0),
    ("OLE_4_64_4ports_4banks", "namd", 9050, 5002, 0),
    ("EOE_4_64_4ports_4banks", "namd", 9049, 5003, 0),
    ("Baseline_DVTAGE_6_64", "namd", 9200, 5003, 0),
    ("EOLE_DVTAGE_4_64", "namd", 9125, 5003, 0),
    ("Baseline_6_64", "gobmk", 40157, 5001, 0),
    ("Baseline_VP_6_64", "gobmk", 40157, 5001, 0),
    ("Baseline_VP_4_64", "gobmk", 40166, 5001, 0),
    ("Baseline_VP_6_48", "gobmk", 40157, 5001, 0),
    ("EOLE_6_64", "gobmk", 40157, 5001, 0),
    ("EOLE_4_64", "gobmk", 40157, 5001, 0),
    ("EOLE_6_48", "gobmk", 40157, 5001, 0),
    ("EOLE_4_64_4banks", "gobmk", 40157, 5001, 0),
    ("EOLE_4_64_4ports_4banks", "gobmk", 40157, 5001, 0),
    ("OLE_4_64_4ports_4banks", "gobmk", 40166, 5001, 0),
    ("EOE_4_64_4ports_4banks", "gobmk", 40157, 5001, 0),
    ("Baseline_DVTAGE_6_64", "gobmk", 40175, 5001, 19),
    ("EOLE_DVTAGE_4_64", "gobmk", 40175, 5001, 19),
    ("Baseline_6_64", "hmmer", 3750, 5000, 0),
    ("Baseline_VP_6_64", "hmmer", 3750, 5000, 0),
    ("Baseline_VP_4_64", "hmmer", 3750, 5000, 0),
    ("Baseline_VP_6_48", "hmmer", 3762, 5000, 0),
    ("EOLE_6_64", "hmmer", 3750, 5000, 0),
    ("EOLE_4_64", "hmmer", 3750, 5000, 0),
    ("EOLE_6_48", "hmmer", 3762, 5000, 0),
    ("EOLE_4_64_4banks", "hmmer", 3750, 5000, 0),
    ("EOLE_4_64_4ports_4banks", "hmmer", 3750, 5000, 0),
    ("OLE_4_64_4ports_4banks", "hmmer", 3750, 5000, 0),
    ("EOE_4_64_4ports_4banks", "hmmer", 3750, 5000, 0),
    ("Baseline_DVTAGE_6_64", "hmmer", 3750, 5000, 0),
    ("EOLE_DVTAGE_4_64", "hmmer", 3750, 5000, 0),
    ("Baseline_6_64", "sjeng", 18582, 5005, 0),
    ("Baseline_VP_6_64", "sjeng", 18582, 5005, 0),
    ("Baseline_VP_4_64", "sjeng", 18650, 5004, 0),
    ("Baseline_VP_6_48", "sjeng", 18582, 5005, 0),
    ("EOLE_6_64", "sjeng", 18578, 5004, 0),
    ("EOLE_4_64", "sjeng", 18602, 5004, 0),
    ("EOLE_6_48", "sjeng", 18578, 5004, 0),
    ("EOLE_4_64_4banks", "sjeng", 18602, 5004, 0),
    ("EOLE_4_64_4ports_4banks", "sjeng", 18602, 5004, 0),
    ("OLE_4_64_4ports_4banks", "sjeng", 18646, 5003, 0),
    ("EOE_4_64_4ports_4banks", "sjeng", 18644, 5002, 0),
    ("Baseline_DVTAGE_6_64", "sjeng", 18582, 5005, 0),
    ("EOLE_DVTAGE_4_64", "sjeng", 18643, 5003, 0),
    ("Baseline_6_64", "h264", 2512, 5005, 0),
    ("Baseline_VP_6_64", "h264", 2520, 5005, 0),
    ("Baseline_VP_4_64", "h264", 2804, 5003, 0),
    ("Baseline_VP_6_48", "h264", 2619, 5005, 0),
    ("EOLE_6_64", "h264", 2516, 5005, 0),
    ("EOLE_4_64", "h264", 2773, 5003, 0),
    ("EOLE_6_48", "h264", 2615, 5005, 0),
    ("EOLE_4_64_4banks", "h264", 2773, 5003, 0),
    ("EOLE_4_64_4ports_4banks", "h264", 2773, 5003, 0),
    ("OLE_4_64_4ports_4banks", "h264", 2804, 5003, 0),
    ("EOE_4_64_4ports_4banks", "h264", 2773, 5003, 0),
    ("Baseline_DVTAGE_6_64", "h264", 2520, 5005, 0),
    ("EOLE_DVTAGE_4_64", "h264", 2773, 5003, 0),
    ("Baseline_6_64", "lbm", 24376, 5002, 0),
    ("Baseline_VP_6_64", "lbm", 24057, 5002, 0),
    ("Baseline_VP_4_64", "lbm", 24057, 5002, 0),
    ("Baseline_VP_6_48", "lbm", 24005, 5002, 0),
    ("EOLE_6_64", "lbm", 24057, 5002, 0),
    ("EOLE_4_64", "lbm", 24057, 5002, 0),
    ("EOLE_6_48", "lbm", 24005, 5002, 0),
    ("EOLE_4_64_4banks", "lbm", 24057, 5002, 0),
    ("EOLE_4_64_4ports_4banks", "lbm", 24057, 5002, 0),
    ("OLE_4_64_4ports_4banks", "lbm", 24057, 5002, 0),
    ("EOE_4_64_4ports_4banks", "lbm", 24057, 5002, 0),
    ("Baseline_DVTAGE_6_64", "lbm", 24057, 5002, 0),
    ("EOLE_DVTAGE_4_64", "lbm", 24057, 5002, 0),
];

/// Every preset × workload reproduces its pre-refactor fingerprint.
#[test]
fn flat_window_simulator_is_cycle_exact() {
    let mut expected: HashMap<(&str, &str), (u64, u64, u64)> = HashMap::new();
    for (config, workload, cycles, committed, squashed) in FINGERPRINTS {
        expected.insert((config, workload), (cycles, committed, squashed));
    }
    let presets = CoreConfig::all_presets();
    let mut checked = 0usize;
    let mut mismatches = Vec::new();
    for w in eole_workloads::all_workloads() {
        let trace = GOLDEN_RUNNER.prepare(&w);
        for config in &presets {
            let name = config.name.clone();
            let mut sim = Simulator::new(&trace, config.clone()).expect("preset is valid");
            sim.run(GOLDEN_RUNNER.warmup).expect("warmup");
            sim.begin_measurement();
            sim.run(GOLDEN_RUNNER.measure).expect("measure");
            let s = sim.stats();
            let got = (s.cycles, s.committed, s.squashed);
            match expected.get(&(name.as_str(), w.name)) {
                Some(want) if *want == got => checked += 1,
                Some(want) => mismatches.push(format!(
                    "{name}/{}: expected {want:?}, got {got:?}", w.name
                )),
                None => mismatches.push(format!("{name}/{}: no golden entry", w.name)),
            }
        }
    }
    assert!(
        mismatches.is_empty(),
        "cycle-exactness broken for {} of {} runs:\n{}",
        mismatches.len(),
        checked + mismatches.len(),
        mismatches.join("\n")
    );
    assert_eq!(checked, FINGERPRINTS.len(), "every golden entry exercised");
}

/// The golden table covers the full preset × workload cross product (no
/// silently dropped coverage).
#[test]
fn golden_table_covers_the_cross_product() {
    let presets = CoreConfig::all_presets();
    let workloads = eole_workloads::all_workloads();
    assert_eq!(FINGERPRINTS.len(), presets.len() * workloads.len());
    for config in &presets {
        for w in &workloads {
            assert!(
                FINGERPRINTS.iter().any(|(c, b, ..)| *c == config.name && *b == w.name),
                "missing golden entry for {}/{}",
                config.name,
                w.name
            );
        }
    }
}
