//! Behavioural invariants of the EOLE mechanism itself, checked end-to-end
//! against real workload traces.

use eole::prelude::*;

fn stats_for(name: &str, config: CoreConfig, insts: u64) -> SimStats {
    let w = workload_by_name(name).unwrap();
    let trace = PreparedTrace::new(w.trace(insts).unwrap());
    let mut sim = Simulator::new(&trace, config).expect("valid config");
    sim.run(u64::MAX).expect("completes");
    sim.stats()
}

#[test]
fn offload_fraction_sits_in_the_papers_band() {
    // §3.4: "a total of 10% to 60% of the retired instructions can be
    // offloaded from the OoO core" — workload dependent.
    let mut seen_high = false;
    for name in ["namd", "art", "applu", "gzip", "crafty"] {
        let s = stats_for(name, CoreConfig::eole_6_64(), 40_000);
        let off = s.offload_fraction();
        assert!(off > 0.05, "{name}: offload {off:.3} too low");
        assert!(off < 0.75, "{name}: offload {off:.3} implausibly high");
        if off > 0.4 {
            seen_high = true;
        }
    }
    assert!(seen_high, "at least one workload should offload >40%");
}

#[test]
fn memory_bound_workloads_offload_little() {
    for name in ["milc", "lbm"] {
        let s = stats_for(name, CoreConfig::eole_6_64(), 30_000);
        assert!(
            s.offload_fraction() < 0.35,
            "{name}: offload {:.3} should be small",
            s.offload_fraction()
        );
    }
}

#[test]
fn early_and_late_sets_are_disjoint() {
    for name in ["namd", "gzip", "vortex"] {
        let s = stats_for(name, CoreConfig::eole_4_64(), 30_000);
        assert!(
            s.early_executed + s.late_executed_alu + s.late_executed_branches <= s.committed,
            "{name}: offload categories overlap"
        );
        // A µ-op is executed once at most: late ALU µ-ops are predicted and
        // not early-executed by construction.
        assert!(s.late_executed_alu <= s.vp_used, "{name}: LE ALU ⊆ used predictions");
    }
}

#[test]
fn high_confidence_branches_are_reliable() {
    // §3.3 rests on saturated-counter branches mispredicting < ~1%.
    for name in ["applu", "art", "vortex", "h264"] {
        let s = stats_for(name, CoreConfig::eole_6_64(), 60_000);
        if s.hc_branches > 1_000 {
            assert!(
                s.hc_branch_misrate() < 0.02,
                "{name}: HC misrate {:.4}",
                s.hc_branch_misrate()
            );
        }
    }
}

#[test]
fn two_stage_early_execution_captures_no_less() {
    // Fig. 2: the 2-deep EE block can only add same-group chaining.
    for name in ["crafty", "namd"] {
        let one = stats_for(name, CoreConfig::eole_6_64(), 30_000);
        let mut cfg = CoreConfig::eole_6_64();
        cfg.eole.ee_stages = 2;
        let two = stats_for(name, cfg, 30_000);
        assert!(
            two.early_executed >= one.early_executed,
            "{name}: 2-stage EE ({}) < 1-stage ({})",
            two.early_executed,
            one.early_executed
        );
    }
}

#[test]
fn disabling_early_or_late_reduces_that_category_to_zero() {
    let ole = stats_for("namd", CoreConfig::ole_4_64_ports(4, 4), 20_000);
    assert_eq!(ole.early_executed, 0, "OLE has no EE");
    assert!(ole.late_executed_alu > 0, "OLE still late-executes");

    let eoe = stats_for("namd", CoreConfig::eoe_4_64_ports(4, 4), 20_000);
    assert_eq!(eoe.late_executed_alu + eoe.late_executed_branches, 0, "EOE has no LE");
    assert!(eoe.early_executed > 0, "EOE still early-executes");
}

#[test]
fn eole_4_issue_stays_close_to_vp_6_issue() {
    // The headline claim, on the friendliest workload: EOLE_4_64 within a
    // few percent of Baseline_VP_6_64.
    for name in ["namd", "applu"] {
        let w = workload_by_name(name).unwrap();
        let trace = PreparedTrace::new(w.trace(60_000).unwrap());
        let ipc = |config| {
            let mut sim = Simulator::new(&trace, config).unwrap();
            sim.run(20_000).unwrap();
            sim.begin_measurement();
            sim.run(u64::MAX).unwrap();
            sim.stats().ipc()
        };
        let base = ipc(CoreConfig::baseline_vp_6_64());
        let eole = ipc(CoreConfig::eole_4_64());
        assert!(
            eole > 0.9 * base,
            "{name}: EOLE_4_64 {eole:.3} vs Baseline_VP_6_64 {base:.3}"
        );
    }
}

#[test]
fn banked_prf_with_four_banks_is_nearly_free() {
    // Fig. 10: 4 banks ≈ single bank.
    let w = workload_by_name("gzip").unwrap();
    let trace = PreparedTrace::new(w.trace(50_000).unwrap());
    let ipc = |config| {
        let mut sim = Simulator::new(&trace, config).unwrap();
        sim.run(u64::MAX).unwrap();
        sim.stats().ipc()
    };
    let mono = ipc(CoreConfig::eole_4_64());
    let banked = ipc(CoreConfig::eole_4_64_banked(4));
    assert!(banked > 0.95 * mono, "4-bank {banked:.3} vs monolithic {mono:.3}");
}
