//! Steady-state zero-allocation enforcement for the hot loop.
//!
//! `Simulator::step` must perform **no heap allocation after warmup** —
//! the contract behind the flat-window refactor (see `PERF.md`). The
//! `alloc-counter` compat shim is installed as this test binary's global
//! allocator; its counters are per thread, so the `#[test]`s here do not
//! observe each other (or the test harness) allocating.
//!
//! Warmup exists because several structures legitimately reach a
//! high-water mark once: predictor in-flight maps meet each static load
//! pc, MSHR files grow to their peak occupancy, the prefetch scratch
//! fills to its degree. After that, a cycle — commit, issue, dispatch,
//! fetch, squash recovery included — must run entirely out of the
//! pre-sized rings and scratch buffers.

use alloc_counter::{count_allocations, CountingAllocator};
use eole_core::config::CoreConfig;
use eole_core::pipeline::{PreparedTrace, Simulator};
use eole_isa::{generate_trace, IntReg, ProgramBuilder};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn r(i: u8) -> IntReg {
    IntReg::new(i)
}

/// A kernel that exercises every window structure from a small static
/// footprint: strided loads and stores (LQ/SQ, store-to-load forwarding,
/// store sets), a multiply chain (unpipelined-FU arbitration), data-
/// dependent branches (mispredicts → squash recovery), and VP-friendly
/// ALU µ-ops. Every static pc appears in the first iteration, so the
/// warmup window meets the full working set.
fn hot_loop_trace(iters: i64) -> PreparedTrace {
    let mut b = ProgramBuilder::new();
    let buf = b.alloc_zeroed(64 * 8);
    let (i, n, base, x, y, t) = (r(1), r(2), r(3), r(4), r(5), r(6));
    b.movi(i, 0);
    b.movi(n, iters);
    b.movi(base, buf as i64);
    b.movi(x, 0x1357_9bdf);
    let top = b.label();
    b.bind(top);
    // Pointer-ish memory traffic over a 64-slot ring.
    b.andi(t, i, 63);
    b.shli(t, t, 3);
    b.add(t, base, t);
    b.st(t, 0, x);
    b.ld(y, t, 0); // forwarded from the store
    // Serial multiply chain (3-cycle FU, keeps the IQ occupied).
    b.mul(x, x, x);
    b.addi(x, x, 7);
    // Data-dependent branch: taken on a pseudo-random half of the
    // iterations — a steady diet of mispredict squashes.
    b.andi(t, y, 1);
    let skip = b.label();
    b.beq_imm(t, 1, skip);
    b.xori(x, x, 0x55);
    b.bind(skip);
    b.addi(i, i, 1);
    b.blt(i, n, top);
    b.halt();
    PreparedTrace::new(generate_trace(&b.build().unwrap(), 2_000_000).unwrap())
}

/// Warm the simulator, then assert that steady-state stepping allocates
/// nothing at all.
fn assert_zero_alloc_steady_state(config: CoreConfig) {
    let trace = hot_loop_trace(100_000);
    let name = config.name.clone();
    let mut sim = Simulator::new(&trace, config).expect("preset is valid");
    // Warmup: caches, predictors, high-water marks (runs through the
    // production `run` path so its one-time lazy state initializes too).
    sim.run(60_000).expect("warmup");
    let committed_before = sim.committed_total();
    let (allocs, bytes) = count_allocations(|| {
        sim.run(40_000).expect("steady state");
    });
    assert!(
        sim.committed_total() >= committed_before + 40_000,
        "{name}: steady-state window must actually retire µ-ops"
    );
    assert_eq!(
        (allocs, bytes),
        (0, 0),
        "{name}: step() allocated in steady state ({allocs} allocations, {bytes} bytes)"
    );
}

#[test]
fn baseline_steps_without_allocating() {
    assert_zero_alloc_steady_state(CoreConfig::baseline_6_64());
}

#[test]
fn vp_pipeline_steps_without_allocating() {
    assert_zero_alloc_steady_state(CoreConfig::baseline_vp_6_64());
}

#[test]
fn eole_pipeline_steps_without_allocating() {
    assert_zero_alloc_steady_state(CoreConfig::eole_6_64());
}

/// The block-based D-VTAGE front (BeBoP blocks, banked tables, bounded
/// speculative window) runs out of pre-sized structures too: window
/// registration, speculative-last lookup, commit training, and window
/// rollback are all allocation-free.
#[test]
fn dvtage_block_pipeline_steps_without_allocating() {
    assert_zero_alloc_steady_state(CoreConfig::baseline_dvtage_6_64());
}

#[test]
fn banked_port_limited_eole_steps_without_allocating() {
    assert_zero_alloc_steady_state(CoreConfig::eole_4_64_ports(4, 4));
}

/// A tight speculative-window bound keeps the window pinned at its cap:
/// every cycle mixes accepted registrations, full-window refusals, and
/// index restores on squash. The per-pc `spec_last` index is pre-sized to
/// the cap, so none of that churn — insert, shadow-restore, remove —
/// may ever rehash or allocate.
#[test]
fn tight_spec_window_churn_does_not_allocate() {
    let config = CoreConfig::baseline_dvtage_6_64().to_builder().vp_spec_window(Some(8)).build();
    assert_zero_alloc_steady_state(config.expect("bounded window of 8 is valid"));
}

/// Squash recovery (the heaviest non-steady path: ROB walk, queue purges,
/// predictor squash callbacks, cursor rewind) is also allocation-free.
#[test]
fn squash_storms_do_not_allocate() {
    let trace = hot_loop_trace(100_000);
    let mut sim = Simulator::new(&trace, CoreConfig::baseline_vp_6_64()).unwrap();
    sim.run(60_000).expect("warmup");
    let squashed_before = sim.stats().squashed;
    let mut squashed_after = 0;
    let (allocs, bytes) = count_allocations(|| {
        sim.run(40_000).expect("steady state");
        squashed_after = sim.stats().squashed;
    });
    assert!(
        squashed_after > squashed_before,
        "the kernel's coin-flip branch must cause squashes in the window"
    );
    assert_eq!((allocs, bytes), (0, 0), "squash recovery allocated");
}

/// Steady-state trace-cache probes are allocation-free: the cache key is
/// the borrowed `(&'static str, u64)` pair (`Workload::name` is static),
/// so after the one-time generation a `get_or_prepare` per run costs a
/// hash lookup and an `Arc` bump — no `String` per probe. Guards the
/// executor's per-run lookup path the same way the tests above guard the
/// simulator's per-cycle path.
#[test]
fn trace_cache_probes_do_not_allocate() {
    use eole_bench::{Runner, TraceCache};
    let cache = TraceCache::new();
    let runner = Runner::quick();
    let w = eole_workloads::workload_by_name("gzip").unwrap();
    // One-time generation: allocates (trace buffers, cache slot).
    cache.get_or_prepare(&w, &runner).unwrap();
    let (allocs, bytes) = count_allocations(|| {
        for _ in 0..1_000 {
            let trace = cache.get_or_prepare(&w, &runner).unwrap();
            std::hint::black_box(&trace);
        }
    });
    assert_eq!(
        (allocs, bytes),
        (0, 0),
        "steady-state cache probes allocated ({allocs} allocations, {bytes} bytes)"
    );
    assert_eq!(cache.generated(), 1);
    assert_eq!(cache.hits(), 1_000);
}

/// Statistics snapshots are `Copy` — sampling them from a driver loop
/// costs no heap traffic either.
#[test]
fn stats_snapshots_do_not_allocate() {
    let trace = hot_loop_trace(20_000);
    let mut sim = Simulator::new(&trace, CoreConfig::eole_6_64()).unwrap();
    sim.run(30_000).expect("warmup");
    let (allocs, _) = count_allocations(|| {
        let mut acc = 0u64;
        for _ in 0..1_000 {
            let s = sim.stats();
            acc = acc.wrapping_add(s.cycles).wrapping_add(s.mem.l1d.accesses);
        }
        std::hint::black_box(acc);
    });
    assert_eq!(allocs, 0, "Simulator::stats() must not clone heap state");
}
