//! Property-based end-to-end tests: randomly generated (but always
//! terminating) programs must execute functionally, trace, and simulate to
//! completion on randomly drawn configurations — deterministically.

use eole::prelude::*;
use proptest::prelude::*;

/// A recipe for one random-but-valid program.
#[derive(Clone, Debug)]
struct Recipe {
    ops: Vec<u8>,
    loop_iters: u8,
    store_every: u8,
}

fn recipe_strategy() -> impl Strategy<Value = Recipe> {
    (
        proptest::collection::vec(0u8..12, 4..60),
        2u8..40,
        1u8..8,
    )
        .prop_map(|(ops, loop_iters, store_every)| Recipe { ops, loop_iters, store_every })
}

/// Builds a program from a recipe: an outer counted loop whose body is a
/// straight-line mix of ALU/memory ops plus a data-dependent forward skip.
fn build(recipe: &Recipe) -> Program {
    let r = IntReg::new;
    let mut b = ProgramBuilder::new();
    let buf = b.add_data_u64(&(0..256u64).map(|i| i.wrapping_mul(0x9e37)).collect::<Vec<_>>());
    let (base, i, lim, acc, t) = (r(1), r(2), r(3), r(4), r(5));
    let regs = [r(6), r(7), r(8), r(9)];

    b.movi(base, buf as i64);
    b.movi(i, 0);
    b.movi(lim, recipe.loop_iters as i64);
    b.movi(acc, 1);
    let top = b.label();
    b.bind(top);
    for (k, op) in recipe.ops.iter().enumerate() {
        let d = regs[k % 4];
        let s = regs[(k + 1) % 4];
        match op {
            0 => b.add(d, s, acc),
            1 => b.sub(d, s, acc),
            2 => b.xor(d, d, s),
            3 => b.shli(d, s, (k % 13) as i64),
            4 => b.mul(d, s, acc),
            5 => {
                b.andi(t, s, 255);
                b.ld_idx(d, base, t, 3, 0);
            }
            6 => {
                if k % recipe.store_every as usize == 0 {
                    b.andi(t, s, 255);
                    b.lea(t, base, t, 3, 0);
                    b.st(t, 0, d);
                } else {
                    b.ori(d, s, 3);
                }
            }
            7 => b.slt(d, s, acc),
            8 => {
                // Data-dependent forward skip.
                let skip = b.label();
                b.andi(t, s, 1);
                b.beq_imm(t, 0, skip);
                b.addi(acc, acc, 1);
                b.bind(skip);
            }
            9 => b.sari(d, s, 2),
            10 => b.rem(d, s, lim),
            _ => b.andi(d, s, 0xffff),
        }
        b.add(acc, acc, d);
    }
    b.addi(i, i, 1);
    b.blt(i, lim, top);
    b.halt();
    b.build().expect("generated program is valid")
}

fn config_from(seed: u8) -> CoreConfig {
    match seed % 6 {
        0 => CoreConfig::baseline_6_64(),
        1 => CoreConfig::baseline_vp_6_64(),
        2 => CoreConfig::eole_4_64(),
        3 => CoreConfig::eole_6_64(),
        4 => CoreConfig::eole_4_64_ports(4, 3),
        _ => CoreConfig::eole_4_64_banked(8),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_programs_simulate_to_completion(recipe in recipe_strategy(), cfg_seed: u8) {
        let program = build(&recipe);
        let trace = PreparedTrace::new(generate_trace(&program, 50_000).unwrap());
        prop_assume!(!trace.is_empty());
        let mut sim = Simulator::new(&trace, config_from(cfg_seed)).unwrap();
        sim.run(u64::MAX).unwrap();
        prop_assert!(sim.finished());
        prop_assert_eq!(sim.committed_total(), trace.len() as u64);
        let s = sim.stats();
        prop_assert!(s.ipc() <= 8.0, "IPC beyond commit width: {}", s.ipc());
        prop_assert!(s.committed == trace.len() as u64);
    }

    #[test]
    fn simulation_is_deterministic_for_any_program(recipe in recipe_strategy()) {
        let program = build(&recipe);
        let trace = PreparedTrace::new(generate_trace(&program, 20_000).unwrap());
        prop_assume!(!trace.is_empty());
        let run = || {
            let mut sim = Simulator::new(&trace, CoreConfig::eole_4_64()).unwrap();
            sim.run(u64::MAX).unwrap();
            let s = sim.stats();
            (s.cycles, s.vp_used, s.squashed, s.early_executed)
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn functional_and_trace_results_agree(recipe in recipe_strategy()) {
        // The trace's recorded dst values must match a fresh functional run.
        let program = build(&recipe);
        let trace = generate_trace(&program, 10_000).unwrap();
        let mut machine = Machine::new(&program);
        for d in &trace.insts {
            let info = machine.step().unwrap();
            prop_assert_eq!(info.pc, d.pc);
            prop_assert_eq!(info.dst_value.unwrap_or(0), d.result);
        }
    }
}
