//! Executor-level chaos: seeded deterministic fault injection against
//! real (quick-methodology) simulations.
//!
//! The contracts under test, end to end:
//!
//! * **Crash isolation** — an injected panic inside one run's simulation
//!   surfaces as a typed [`RunError::Panicked`] for that run only;
//!   sibling runs complete with byte-identical statistics and the worker
//!   pool survives.
//! * **Deadline watchdog** — a run that outlives the executor's per-run
//!   budget fails typed ([`RunError::Deadline`]), never silently slow.
//! * **Quarantine self-healing** — a damaged `DirStore` entry is set
//!   aside as `<stem>.quarantined`, transparently re-simulated, and the
//!   healed store serves bytes identical to a never-damaged one.
//! * **Replay determinism** — the same `(plan, seed)` fires the same
//!   faults at the same runs regardless of thread count.
//! * **Closure under random plans** (proptest) — any random schedule of
//!   faults yields exactly N outcomes, each `Ok` or a typed error, and
//!   every survivor matches the fault-free baseline counter for counter.
//!
//! The injector is process-global: every test serializes through
//! [`faults::install_guarded`] (RAII — uninstalls on drop), and
//! fault-free baselines are computed inside the guard with the plan
//! temporarily uninstalled.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use eole_bench::faults::{self, FaultPlan};
use eole_bench::{
    DirStore, Executor, Grid, ResultStore, RunError, RunResult, Runner, StoreError,
};
use eole_core::config::CoreConfig;
use proptest::prelude::*;

fn small_grid() -> Grid {
    Grid::new()
        .runner(Runner::quick())
        .configs([CoreConfig::baseline_6_64(), CoreConfig::eole_4_64()])
        .workload_names(&["gzip", "mcf"])
}

fn temp_store_dir(tag: &str) -> std::path::PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "eole-chaos-{}-{}-{tag}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Debug-renders every outcome (stats carry no `PartialEq`; Debug covers
/// every counter, so equal strings mean equal statistics).
fn outcome_fingerprints(results: &[RunResult]) -> Vec<Result<String, String>> {
    results
        .iter()
        .map(|r| match &r.outcome {
            Ok(stats) => Ok(format!("{stats:?}")),
            Err(e) => Err(e.to_string()),
        })
        .collect()
}

#[test]
fn injected_panic_is_isolated_to_its_run() {
    let grid = small_grid();
    // Serialize with other fault tests, then compute the fault-free
    // baseline with the plan temporarily uninstalled.
    let _guard = faults::install_guarded(FaultPlan::parse("sim.panic@1,seed=1").unwrap());
    faults::install(None);
    let baseline = outcome_fingerprints(&Executor::with_threads(2).run(&grid));

    // `sim.panic` is keyed by stable grid index, so run #1 crashes at any
    // thread count while every sibling completes identically.
    for threads in [1usize, 2, 4] {
        faults::install(Some(FaultPlan::parse("sim.panic@1,seed=1").unwrap()));
        let results = Executor::with_threads(threads).run(&grid);
        assert_eq!(results.len(), grid.len(), "threads={threads}: every run has an outcome");
        for (i, (r, base)) in results.iter().zip(&baseline).enumerate() {
            if i == 1 {
                match &r.outcome {
                    Err(RunError::Panicked { message, .. }) => {
                        assert!(message.contains("injected fault: sim.panic"), "{message}");
                    }
                    other => panic!("threads={threads}: run 1 must be Panicked, got {other:?}"),
                }
            } else {
                let stats = format!("{:?}", r.outcome.as_ref().expect("sibling must survive"));
                assert_eq!(&Ok(stats), base, "threads={threads}: sibling {i} drifted");
            }
        }
    }
}

#[test]
fn deadline_watchdog_fails_overrunning_runs_typed() {
    let grid = Grid::new()
        .runner(Runner::quick())
        .config(CoreConfig::baseline_6_64())
        .workload_names(&["gzip"]);
    // A 1 ms budget: any real simulation overruns it, deterministically.
    let results =
        Executor::with_threads(1).with_deadline(Some(Duration::from_millis(1))).run(&grid);
    match &results[0].outcome {
        Err(RunError::Deadline { elapsed_ms, budget_ms, .. }) => {
            assert_eq!(*budget_ms, 1);
            assert!(*elapsed_ms >= 1, "elapsed {elapsed_ms} ms must be over the budget");
        }
        other => panic!("a 1 ms budget must fail the run typed, got {other:?}"),
    }
    // A generous budget never fires.
    let results =
        Executor::with_threads(1).with_deadline(Some(Duration::from_secs(600))).run(&grid);
    assert!(results[0].outcome.is_ok(), "{:?}", results[0].outcome);
}

#[test]
fn quarantined_entry_self_heals_to_byte_identity() {
    let grid = small_grid();
    let dir = temp_store_dir("self-heal");
    let _guard = faults::install_guarded(FaultPlan::parse("dir.load.corrupt@0,seed=3").unwrap());
    faults::install(None);

    // Warm the store fault-free and keep the baseline.
    let store: Arc<dyn ResultStore> = Arc::new(DirStore::open(&dir).unwrap());
    let baseline = outcome_fingerprints(&Executor::with_threads(2).with_store(store).run(&grid));

    // Second pass with the fault armed: the first successful read off
    // disk is damaged in flight, quarantined, and re-simulated — the
    // results must still match the baseline byte for byte.
    faults::install(Some(FaultPlan::parse("dir.load.corrupt@0,seed=3").unwrap()));
    let store = Arc::new(DirStore::open(&dir).unwrap());
    let exec = Executor::with_threads(2).with_store(Arc::<DirStore>::clone(&store));
    let healed = outcome_fingerprints(&exec.run(&grid));
    assert_eq!(healed, baseline, "self-healed results must be identical");
    assert_eq!(store.quarantined_count(), 1, "exactly one entry was damaged");
    assert_eq!(exec.simulated(), 1, "exactly one re-simulation healed it");
    let quarantined: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .filter(|e| e.path().extension().is_some_and(|x| x == "quarantined"))
        .collect();
    assert_eq!(quarantined.len(), 1, "the damaged file is kept for forensics");

    // Third pass, faults off: the healed store serves everything.
    faults::install(None);
    let store = Arc::new(DirStore::open(&dir).unwrap());
    let exec = Executor::with_threads(2).with_store(Arc::<DirStore>::clone(&store));
    let warm = outcome_fingerprints(&exec.run(&grid));
    assert_eq!(warm, baseline);
    assert_eq!(exec.simulated(), 0, "the healed store is fully warm");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn injected_save_failure_is_a_typed_store_error() {
    let grid = Grid::new()
        .runner(Runner::quick())
        .config(CoreConfig::baseline_6_64())
        .workload_names(&["gzip"]);
    let dir = temp_store_dir("save-io");
    let _guard = faults::install_guarded(FaultPlan::parse("dir.save.io@0,seed=1").unwrap());
    let store: Arc<dyn ResultStore> = Arc::new(DirStore::open(&dir).unwrap());
    let results = Executor::with_threads(1).with_store(store).run(&grid);
    match &results[0].outcome {
        Err(RunError::Store { source: StoreError::Io(msg), .. }) => {
            assert!(msg.contains("injected fault: dir.save.io"), "{msg}");
        }
        other => panic!("a failed persist must be a typed Store error, got {other:?}"),
    }
    // No half-written litter: the fault fires before the temp write.
    let stray: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .filter(|e| {
            let name = e.file_name().to_string_lossy().into_owned();
            name.starts_with(".tmp") || name.ends_with(".quarantined")
        })
        .collect();
    assert!(stray.is_empty(), "{stray:?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rate_faults_replay_identically_across_thread_counts() {
    let grid = small_grid();
    let spec = "sim.panic~0.5,seed=7";
    let _guard = faults::install_guarded(FaultPlan::parse(spec).unwrap());
    let failing = |threads: usize| -> Vec<usize> {
        faults::install(Some(FaultPlan::parse(spec).unwrap()));
        Executor::with_threads(threads)
            .run(&grid)
            .iter()
            .enumerate()
            .filter(|(_, r)| r.outcome.is_err())
            .map(|(i, _)| i)
            .collect()
    };
    let first = failing(2);
    assert_eq!(first, failing(2), "same plan, same seed: same victims");
    assert_eq!(first, failing(1), "thread count must not move the faults");
    assert_eq!(first, failing(4));
    // A different seed draws a different (still deterministic) schedule.
    faults::install(Some(FaultPlan::parse("sim.panic~0.5,seed=8").unwrap()));
    let reseeded: Vec<usize> = Executor::with_threads(2)
        .run(&grid)
        .iter()
        .enumerate()
        .filter(|(_, r)| r.outcome.is_err())
        .map(|(i, _)| i)
        .collect();
    faults::install(Some(FaultPlan::parse("sim.panic~0.5,seed=8").unwrap()));
    let reseeded_again: Vec<usize> = Executor::with_threads(4)
        .run(&grid)
        .iter()
        .enumerate()
        .filter(|(_, r)| r.outcome.is_err())
        .map(|(i, _)| i)
        .collect();
    assert_eq!(reseeded, reseeded_again, "the reseeded schedule replays too");
}

// ---- satellite: closure under random fault plans --------------------------

/// A random clause over the executor-facing sites. `sim.panic` crashes a
/// run; `dir.save.io` fails a persist; `dir.load.corrupt` damages a read
/// (a no-op against the cold stores used here — load faults only fire on
/// bytes actually read — but it keeps the plan space honest).
fn clause_strategy() -> impl Strategy<Value = String> {
    // (site selector, trigger selector, parameter draw) — the vendored
    // proptest shim has no `prop_oneof`, so select by index.
    (0u8..3, 0u8..3, 1u64..4).prop_map(|(site, trigger, n)| {
        let site = ["sim.panic", "dir.save.io", "dir.load.corrupt"][site as usize];
        let trigger = match trigger {
            0 => format!("@{}", n - 1), // exact occurrence 0..=2
            1 => format!("%{n}"),       // every 1..=3
            _ => format!("~0.{n}"),     // Bernoulli 0.1..=0.3
        };
        format!("{site}{trigger}")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any random plan over a 2×2 quick grid: the executor returns
    /// exactly N outcomes, every failure is typed (`Panicked` or
    /// `Store` — the only errors these sites can produce), and every
    /// survivor's statistics equal the fault-free baseline's.
    #[test]
    fn random_fault_plans_never_break_the_outcome_contract(
        clauses in proptest::collection::vec(clause_strategy(), 1..4),
        seed in 0u64..1000,
    ) {
        let spec = format!("{},seed={seed}", clauses.join(","));
        let plan = FaultPlan::parse(&spec).expect("generated specs are valid");
        let grid = small_grid();

        let _guard = faults::install_guarded(plan);
        faults::install(None);
        let baseline = outcome_fingerprints(&Executor::with_threads(2).run(&grid));

        faults::install(Some(FaultPlan::parse(&spec).unwrap()));
        let dir = temp_store_dir("proptest");
        let store: Arc<dyn ResultStore> = Arc::new(DirStore::open(&dir).unwrap());
        let results = Executor::with_threads(2).with_store(store).run(&grid);

        prop_assert_eq!(results.len(), grid.len(), "exactly N outcomes, always");
        for (i, r) in results.iter().enumerate() {
            match &r.outcome {
                Ok(stats) => {
                    let fp = format!("{stats:?}");
                    prop_assert_eq!(
                        Ok(&fp),
                        baseline[i].as_ref(),
                        "plan `{}`: survivor {} must match the fault-free run",
                        spec,
                        i
                    );
                }
                Err(RunError::Panicked { .. } | RunError::Store { .. }) => {}
                Err(other) => {
                    prop_assert!(false, "plan `{}`: untyped failure {:?}", spec, other);
                }
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
