//! Squash-and-recovery stress tests: the paper's whole premise is that
//! squashing (not selective replay) is an acceptable recovery mechanism
//! because FPC makes value mispredictions rare. These tests hammer the
//! recovery paths and check architectural bookkeeping survives.

use eole::prelude::*;

fn r(i: u8) -> IntReg {
    IntReg::new(i)
}

/// A program whose loaded value flips between long stable phases, forcing
/// periodic value-misprediction squashes once the FPC saturates.
fn phase_flip_program(phase_len: i64, phases: i64) -> Program {
    let mut b = ProgramBuilder::new();
    let cell = b.add_data_u64(&[1]);
    let (base, i, v, acc, phase, cur) = (r(1), r(2), r(3), r(4), r(5), r(6));
    b.movi(base, cell as i64);
    b.movi(phase, 0);
    b.movi(cur, 1);
    let phase_top = b.label();
    b.bind(phase_top);
    b.movi(i, 0);
    let top = b.label();
    b.bind(top);
    b.ld(v, base, 0);
    b.add(acc, acc, v);
    b.addi(i, i, 1);
    b.blt_imm(i, phase_len, top);
    // Flip the cell to a new constant: the next saturated prediction of
    // the load is wrong exactly once per phase.
    b.shli(cur, cur, 1);
    b.ori(cur, cur, 1);
    b.st(base, 0, cur);
    b.addi(phase, phase, 1);
    b.blt_imm(phase, phases, phase_top);
    b.halt();
    b.build().unwrap()
}

#[test]
fn periodic_value_mispredictions_squash_and_recover() {
    let program = phase_flip_program(2_000, 10);
    let trace = PreparedTrace::new(generate_trace(&program, 1_000_000).unwrap());
    let mut sim = Simulator::new(&trace, CoreConfig::baseline_vp_6_64()).unwrap();
    sim.run(u64::MAX).unwrap();
    assert!(sim.finished());
    assert_eq!(sim.committed_total(), trace.len() as u64, "exactly-once commit");
    let s = sim.stats();
    // Each flip must be discovered; the hybrid may squash a few times per
    // flip (each saturated component — stride, VTAGE base, VTAGE tagged —
    // is proven wrong separately before confidence drains).
    assert!(
        (5..=60).contains(&s.vp_squashes),
        "a handful of squashes per phase flip: {}",
        s.vp_squashes
    );
    assert!(s.vp_accuracy() > 0.995, "accuracy {:.4}", s.vp_accuracy());
}

#[test]
fn squashes_do_not_break_determinism() {
    let program = phase_flip_program(1_000, 6);
    let trace = PreparedTrace::new(generate_trace(&program, 200_000).unwrap());
    let run = || {
        let mut sim = Simulator::new(&trace, CoreConfig::eole_4_64()).unwrap();
        sim.run(u64::MAX).unwrap();
        let s = sim.stats();
        (s.cycles, s.vp_squashes, s.squashed, s.early_executed, s.late_executed_alu)
    };
    assert_eq!(run(), run());
}

#[test]
fn eole_squashes_cost_more_but_stay_rare() {
    // With EOLE, a squash also flushes early/late-executed work; the IPC
    // hit must stay bounded because squashes are rare by construction.
    let program = phase_flip_program(3_000, 8);
    let trace = PreparedTrace::new(generate_trace(&program, 500_000).unwrap());
    let mut base = Simulator::new(&trace, CoreConfig::baseline_6_64()).unwrap();
    base.run(u64::MAX).unwrap();
    let mut eole = Simulator::new(&trace, CoreConfig::eole_4_64()).unwrap();
    eole.run(u64::MAX).unwrap();
    let b = base.stats();
    let e = eole.stats();
    assert!(e.vp_squashes > 0, "the flips must actually mispredict");
    assert!(
        e.ipc() > 0.8 * b.ipc(),
        "squash overhead bounded: eole {:.3} vs base {:.3}",
        e.ipc(),
        b.ipc()
    );
}

#[test]
fn memory_order_violations_recover_architecturally() {
    // Store address produced by a slow divide; a younger load to the same
    // address speculates past it. After the squash storm settles, the
    // committed count must still be exact and store sets must have cut the
    // violation rate.
    let mut b = ProgramBuilder::new();
    let buf = b.add_data_u64(&[0; 8]);
    let (base, i, n, d3, addr, v) = (r(1), r(2), r(3), r(4), r(5), r(6));
    b.movi(base, buf as i64);
    b.movi(i, 0);
    b.movi(n, 2_000);
    b.movi(d3, 3);
    let top = b.label();
    b.bind(top);
    b.movi(v, 24);
    b.div(v, v, d3); // 8, slowly
    b.add(addr, base, v);
    b.st(addr, 0, i);
    b.ld(v, base, 8);
    b.add(v, v, i);
    b.addi(i, i, 1);
    b.bne(i, n, top);
    b.halt();
    let trace = PreparedTrace::new(generate_trace(&b.build().unwrap(), 200_000).unwrap());
    let mut sim = Simulator::new(&trace, CoreConfig::baseline_vp_6_64()).unwrap();
    sim.run(u64::MAX).unwrap();
    assert!(sim.finished());
    assert_eq!(sim.committed_total(), trace.len() as u64);
    let s = sim.stats();
    assert!(s.memory_order_squashes >= 1);
    assert!(
        s.memory_order_squashes < 500,
        "store sets must bound recurrence: {}",
        s.memory_order_squashes
    );
}

#[test]
fn mixed_squash_sources_interleave_safely() {
    // Value mispredictions + memory-order violations in one program.
    let mut b = ProgramBuilder::new();
    let cell = b.add_data_u64(&[5]);
    let buf = b.add_data_u64(&[0; 8]);
    let (cbase, bbase, i, n, v, d3, addr, acc) =
        (r(1), r(2), r(3), r(4), r(5), r(6), r(7), r(8));
    b.movi(cbase, cell as i64);
    b.movi(bbase, buf as i64);
    b.movi(i, 0);
    b.movi(n, 3_000);
    b.movi(d3, 3);
    let top = b.label();
    b.bind(top);
    // Value-predictable load that flips at iteration 1500.
    b.ld(v, cbase, 0);
    b.add(acc, acc, v);
    // Slow-address store + racing load.
    b.movi(addr, 24);
    b.div(addr, addr, d3);
    b.add(addr, addr, bbase);
    b.st(addr, 0, i);
    b.ld(v, bbase, 8);
    b.addi(i, i, 1);
    let noflip = b.label();
    b.bne_imm(i, 1_500, noflip);
    b.movi(v, 99);
    b.st(cbase, 0, v);
    b.bind(noflip);
    b.bne(i, n, top);
    b.halt();
    let trace = PreparedTrace::new(generate_trace(&b.build().unwrap(), 300_000).unwrap());
    for config in [CoreConfig::baseline_vp_6_64(), CoreConfig::eole_4_64_ports(4, 4)] {
        let name = config.name.clone();
        let mut sim = Simulator::new(&trace, config).unwrap();
        sim.run(u64::MAX).unwrap();
        assert!(sim.finished(), "{name}");
        assert_eq!(sim.committed_total(), trace.len() as u64, "{name}");
    }
}
