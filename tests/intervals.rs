//! Interval-parallel simulation: stitched-vs-serial contracts.
//!
//! A run split into K intervals (`Runner::try_run_intervals`) must
//! reproduce the serial run's *architectural* record exactly — committed
//! and squashed µ-op counts — because every interval reconstructs
//! predictor state by functionally replaying its prefix
//! (`Simulator::functional_warm`) and then warms timing-local state with
//! a detailed window of W µ-ops. Cycle counts are allowed to drift only
//! within the pinned budget (`INTERVAL_CYCLE_BUDGET`, 0.5%). The golden
//! table below pins both properties for every quick-suite preset; the
//! proptest extends the exactness contract to random (K, W, runner)
//! draws.

use eole_bench::store::render_result_payload;
use eole_bench::{
    check_stitched_against_serial, DirStore, Grid, IntervalPolicy, MemStore, ResultStore, RunKey,
    RunSpec, Runner, Session, INTERVAL_CYCLE_BUDGET, WARM_STEM_PREFIX,
};
use eole_core::config::CoreConfig;
use eole_core::stats::SimStats;
use eole_workloads::workload_by_name;
use proptest::prelude::*;
use std::sync::Arc;

/// The `sim-throughput` quick-suite axes: the paper's reference configs
/// over an INT/FP/memory-bound workload spread.
fn suite_configs() -> Vec<CoreConfig> {
    vec![
        CoreConfig::baseline_6_64(),
        CoreConfig::baseline_vp_6_64(),
        CoreConfig::eole_6_64(),
        CoreConfig::eole_4_64_ports(4, 4),
    ]
}

const SUITE_WORKLOADS: [&str; 5] = ["gzip", "h264", "mcf", "namd", "hmmer"];

fn stitched_and_serial(
    runner: Runner,
    config: &CoreConfig,
    workload: &str,
    policy: IntervalPolicy,
) -> (SimStats, SimStats) {
    let w = workload_by_name(workload).expect("suite workload");
    let trace = runner.try_prepare(&w).expect("trace");
    let stitched = runner.try_run_intervals(&trace, config.clone(), policy).expect("stitched");
    let serial = runner.try_run_serial_exact(&trace, config.clone()).expect("serial");
    (stitched, serial)
}

/// The golden stitched-vs-serial table: every quick-suite preset, split
/// k=2 and k=8, must keep committed and squashed counts exact and cycle
/// error inside the pinned budget.
#[test]
fn quick_suite_stitched_matches_serial_within_budget() {
    let runner = Runner::quick();
    for workload in SUITE_WORKLOADS {
        for config in &suite_configs() {
            for k in [2u32, 8] {
                let policy = IntervalPolicy::of(k, &runner);
                let (stitched, serial) = stitched_and_serial(runner, config, workload, policy);
                let label = format!("{}/{workload} k={k}", config.name);
                assert_eq!(stitched.committed, serial.committed, "{label}: committed");
                assert_eq!(stitched.committed, runner.measure, "{label}: covers the window");
                assert_eq!(stitched.squashed, serial.squashed, "{label}: squashed");
                let err = (stitched.cycles as f64 - serial.cycles as f64).abs()
                    / serial.cycles as f64;
                assert!(
                    err <= INTERVAL_CYCLE_BUDGET,
                    "{label}: cycle error {:.4}% exceeds the {:.1}% budget ({} vs {})",
                    err * 100.0,
                    INTERVAL_CYCLE_BUDGET * 100.0,
                    stitched.cycles,
                    serial.cycles,
                );
                // The paranoid-mode checker asserts the same contract;
                // exercising it here keeps it honest (it must not panic
                // on an in-budget pair).
                check_stitched_against_serial(&label, policy, &stitched, &serial);
            }
        }
    }
}

/// k=1 through the interval path is the exact-boundary serial run,
/// bit for bit — the degenerate stitch is a pure pass-through.
#[test]
fn single_interval_is_bit_identical_to_serial_exact() {
    let runner = Runner::quick();
    let w = workload_by_name("hmmer").unwrap();
    let trace = runner.try_prepare(&w).unwrap();
    let config = CoreConfig::eole_6_64();
    let policy = IntervalPolicy { k: 1, warmup: runner.warmup };
    let stitched = runner.try_run_intervals(&trace, config.clone(), policy).unwrap();
    let serial = runner.try_run_serial_exact(&trace, config).unwrap();
    assert_eq!(stitched.cycles, serial.cycles);
    assert_eq!(stitched.committed, serial.committed);
    assert_eq!(stitched.squashed, serial.squashed);
    assert_eq!(stitched.fetched, serial.fetched);
    assert_eq!(stitched.vp_used, serial.vp_used);
    assert_eq!(stitched.vp_squashes, serial.vp_squashes);
    assert_eq!(stitched.branch_mispredicts, serial.branch_mispredicts);
}

/// Interval-tagged run keys never collide with serial keys: the tag
/// participates in the digest, the file stem, and the payload.
#[test]
fn interval_keys_are_distinct_from_serial_keys() {
    let runner = Runner::quick();
    let spec = RunSpec {
        config: CoreConfig::eole_6_64(),
        workload: workload_by_name("gzip").unwrap(),
        runner,
        seed: 0,
    };
    let serial = RunKey::of(&spec);
    let tagged = RunKey::of_intervals(&spec, IntervalPolicy { k: 4, warmup: 1_000 });
    assert_eq!(serial.intervals, 0);
    assert_eq!(tagged.intervals, 4);
    assert_ne!(serial.digest64(), tagged.digest64(), "tag must change the digest");
    assert!(!serial.file_stem().contains("_i"), "serial stems carry no tag");
    assert!(tagged.file_stem().contains("_i4-1000"), "{}", tagged.file_stem());
    // Different k or W are different digests too (different approximations).
    let other = RunKey::of_intervals(&spec, IntervalPolicy { k: 8, warmup: 1_000 });
    assert_ne!(tagged.digest64(), other.digest64());

    // Store round-trip: a result saved under the tagged key is invisible
    // to the serial key and vice versa.
    let store = MemStore::new();
    let stats = SimStats { cycles: 7, committed: 42, ..SimStats::default() };
    store.save(&tagged, &stats).unwrap();
    assert!(store.load(&serial).is_none(), "serial lookup must miss the tagged result");
    let back = store.load(&tagged).expect("tagged lookup hits");
    assert_eq!(back.cycles, 7);
    assert_eq!(back.committed, 42);
}

/// The executor's interval path: grid results equal the library-level
/// stitch, results keep grid order, and a warm store serves the repeat
/// grid with zero simulations — under the interval-tagged keys.
#[test]
fn executor_interval_path_matches_library_stitch_and_caches() {
    let runner = Runner::quick();
    let policy = IntervalPolicy::of(4, &runner);
    let grid = Grid::new()
        .runner(runner)
        .configs([CoreConfig::baseline_6_64(), CoreConfig::eole_6_64()])
        .workload_names(&["gzip", "namd"]);
    let store: Arc<dyn ResultStore> = Arc::new(MemStore::new());
    let session = Session::builder()
        .runner(runner)
        .threads(3)
        .intervals(4)
        .store(Arc::clone(&store))
        .build()
        .unwrap();
    assert_eq!(session.intervals(), Some(policy));
    let results = session.run(&grid);
    assert_eq!(results.len(), 4);
    assert_eq!(session.executor().simulated(), 4);
    for (r, spec) in results.iter().zip(grid.specs()) {
        assert_eq!(r.spec.label(), spec.label(), "stitched results keep grid order");
        let got = r.stats().expect("stitched run succeeds");
        let trace = runner.try_prepare(&spec.workload).unwrap();
        let want = runner.try_run_intervals(&trace, spec.effective_config(), policy).unwrap();
        assert_eq!(got.cycles, want.cycles, "{}", spec.label());
        assert_eq!(got.committed, want.committed);
        assert_eq!(got.squashed, want.squashed);
    }
    // Warm repeat: all four cells come from the store under tagged keys.
    let warm = Session::builder()
        .runner(runner)
        .threads(2)
        .intervals(4)
        .store(Arc::clone(&store))
        .build()
        .unwrap();
    let again = warm.run(&grid);
    assert_eq!(warm.executor().simulated(), 0, "warm store serves every stitched cell");
    assert_eq!(warm.executor().store_hits(), 4);
    for (a, b) in results.iter().zip(&again) {
        assert_eq!(a.stats().unwrap().cycles, b.stats().unwrap().cycles);
    }
    // A serial session over the same grid must NOT see the stitched
    // results (tagged keys are invisible to serial lookups).
    let serial = Session::builder()
        .runner(runner)
        .threads(2)
        .store(Arc::clone(&store))
        .build()
        .unwrap();
    serial.run(&grid);
    assert_eq!(serial.executor().store_hits(), 0, "serial keys must miss stitched results");
    assert_eq!(serial.executor().simulated(), 4);
}

/// The checkpointed chained sweep — one O(trace) functional pass that
/// emits every piece's [`WarmState`] — reproduces the replay-from-zero
/// stitch byte for byte across every quick-suite preset, and its
/// functional work is bounded by a single trace prefix (the PR's
/// O(trace)-vs-O(k·T/2) warmup claim, as an assertion).
///
/// [`WarmState`]: eole_core::pipeline::WarmState
#[test]
fn chained_sweep_is_bit_identical_to_replay_stitch() {
    let runner = Runner::quick();
    for workload in SUITE_WORKLOADS {
        let w = workload_by_name(workload).expect("suite workload");
        let trace = runner.try_prepare(&w).expect("trace");
        for config in &suite_configs() {
            for k in [2u32, 8] {
                let policy = IntervalPolicy::of(k, &runner);
                let replay =
                    runner.try_run_intervals(&trace, config.clone(), policy).expect("replay");
                let (chained, sweep) = runner
                    .try_run_intervals_chained(&trace, config.clone(), policy)
                    .expect("chained");
                let label = format!("{}/{workload} k={k}", config.name);
                // Byte identity of the full statistics record: compare the
                // canonical store payload both would publish.
                let spec =
                    RunSpec { config: config.clone(), workload: w.clone(), runner, seed: 0 };
                let key = RunKey::of_intervals(&spec, policy);
                assert_eq!(
                    render_result_payload(&key, &chained),
                    render_result_payload(&key, &replay),
                    "{label}: chained stitch must equal the replay stitch byte for byte"
                );
                assert!(
                    sweep.swept <= runner.warmup + runner.measure,
                    "{label}: sweep replayed {} µ-ops, more than one trace prefix ({})",
                    sweep.swept,
                    runner.warmup + runner.measure,
                );
                assert_eq!(sweep.built, k as usize, "{label}: one checkpoint per piece");
                assert_eq!(sweep.loaded, 0, "{label}: no cache was offered");
            }
        }
    }
}

/// The executor's checkpoint cache: a cold stitched run builds and
/// publishes its checkpoints; a later run at a *different* k (whose
/// result keys therefore miss) re-serves the positions it shares —
/// [`eole_bench::WarmKey`] deliberately carries no k, so k=2's positions
/// are a subset of k=4's and its sweep rebuilds nothing.
#[test]
fn executor_checkpoint_sweep_caches_warm_state_across_k() {
    let runner = Runner::quick();
    let grid = Grid::new()
        .runner(runner)
        .configs([CoreConfig::eole_6_64()])
        .workload_names(&["gzip"]);
    let store: Arc<dyn ResultStore> = Arc::new(MemStore::new());
    let window = Some(10_000);
    let cold = Session::builder()
        .runner(runner)
        .threads(3)
        .intervals(4)
        .interval_warmup(window)
        .store(Arc::clone(&store))
        .build()
        .unwrap();
    let first = cold.run(&grid);
    assert_eq!(cold.executor().warm_built(), 4, "cold sweep builds one checkpoint per piece");
    assert_eq!(cold.executor().warm_loaded(), 0);
    assert_eq!(store.len(), 1, "checkpoints never count as result entries");

    let warm = Session::builder()
        .runner(runner)
        .threads(2)
        .intervals(2)
        .interval_warmup(window)
        .store(Arc::clone(&store))
        .build()
        .unwrap();
    let second = warm.run(&grid);
    assert_eq!(warm.executor().store_hits(), 0, "k=2 result keys miss k=4 results");
    assert_eq!(warm.executor().warm_loaded(), 2, "k=2 positions are a subset of k=4's");
    assert_eq!(warm.executor().warm_built(), 0, "nothing to rebuild on a warm store");
    // Checkpoint-restored pieces produce the same stitch the library does.
    let spec = &grid.specs()[0];
    let trace = runner.try_prepare(&spec.workload).unwrap();
    let policy = IntervalPolicy { k: 2, warmup: 10_000 };
    let want = runner.try_run_intervals(&trace, spec.effective_config(), policy).unwrap();
    let got = second[0].stats().expect("stitched run succeeds");
    assert_eq!(got.cycles, want.cycles);
    assert_eq!(got.committed, want.committed);
    assert_eq!(got.squashed, want.squashed);
    assert_eq!(
        first[0].stats().unwrap().committed,
        got.committed,
        "both splits commit exactly the measurement window"
    );
}

/// A damaged checkpoint on disk degrades that position to functional
/// replay (the sweep rebuilds and republishes it) and is quarantined for
/// forensics — the stitched statistics are unaffected.
#[test]
fn corrupt_warm_checkpoint_degrades_to_replay_and_heals() {
    let dir = std::env::temp_dir().join(format!("eole-warm-degrade-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Arc::new(DirStore::open(&dir).unwrap());
    let runner = Runner::quick();
    let grid = Grid::new()
        .runner(runner)
        .configs([CoreConfig::eole_6_64()])
        .workload_names(&["gzip"]);
    let window = Some(10_000);
    let cold = Session::builder()
        .runner(runner)
        .threads(2)
        .intervals(2)
        .interval_warmup(window)
        .store(Arc::clone(&store) as Arc<dyn ResultStore>)
        .build()
        .unwrap();
    cold.run(&grid);
    assert_eq!(cold.executor().warm_built(), 2);

    // Flip one byte inside one checkpoint payload on disk.
    let victim = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.path())
        .find(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with(WARM_STEM_PREFIX) && n.ends_with(".json"))
        })
        .expect("a checkpoint landed on disk");
    let mut bytes = std::fs::read(&victim).unwrap();
    let at = bytes.len() / 2;
    bytes[at] ^= 0x01;
    std::fs::write(&victim, &bytes).unwrap();

    // k=4 misses the k=2 result key, so its sweep re-reads checkpoints:
    // the damaged one is quarantined and rebuilt, the good one is served.
    let rerun = Session::builder()
        .runner(runner)
        .threads(2)
        .intervals(4)
        .interval_warmup(window)
        .store(Arc::clone(&store) as Arc<dyn ResultStore>)
        .build()
        .unwrap();
    let results = rerun.run(&grid);
    assert_eq!(rerun.executor().warm_loaded(), 1, "the undamaged checkpoint is served");
    assert_eq!(rerun.executor().warm_built(), 3, "the damaged one is rebuilt, plus k=4's new positions");
    assert_eq!(store.quarantined_count(), 1, "damage is quarantined, not silently retried");
    assert!(
        victim.with_extension("quarantined").exists(),
        "the damaged payload is renamed aside for forensics"
    );
    assert!(victim.exists(), "the rebuilt checkpoint is republished at the same path (self-heal)");

    let spec = &grid.specs()[0];
    let trace = runner.try_prepare(&spec.workload).unwrap();
    let policy = IntervalPolicy { k: 4, warmup: 10_000 };
    let want = runner.try_run_intervals(&trace, spec.effective_config(), policy).unwrap();
    let got = results[0].stats().expect("degraded run still succeeds");
    assert_eq!(got.cycles, want.cycles, "statistics survive checkpoint damage untouched");
    assert_eq!(got.committed, want.committed);
    assert_eq!(got.squashed, want.squashed);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The session JSON header advertises the interval policy (additive
/// field; serial sessions emit the unchanged v1 payload).
#[test]
fn session_json_header_carries_the_interval_tag() {
    let with = Session::builder()
        .runner(Runner { warmup: 11, measure: 22 })
        .intervals(3)
        .interval_warmup(Some(7))
        .build()
        .unwrap();
    let payload = with.render(&[], eole_bench::Format::Json);
    assert!(payload.contains("\"intervals\":{\"k\":3,\"warmup\":7}"), "{payload}");
    let without = Session::builder().runner(Runner { warmup: 11, measure: 22 }).build().unwrap();
    let payload = without.render(&[], eole_bench::Format::Json);
    assert!(!payload.contains("intervals"), "serial payloads must be byte-stable: {payload}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The architectural-exactness contract under random (K, W, runner):
    /// stitched committed and squashed counts equal the exact-boundary
    /// serial run's, for a VP-heavy config on the suite's worst squasher
    /// (hmmer) and a VP-less baseline on gzip.
    #[test]
    fn stitched_counts_equal_serial_for_random_k_w_and_runner(
        k in 1u32..9,
        warmup_window in 500u64..4_000,
        warmup in 1_000u64..4_000,
        measure in 2_000u64..10_000,
        vp in any::<bool>(),
    ) {
        let runner = Runner { warmup, measure };
        let policy = IntervalPolicy { k, warmup: warmup_window };
        let (config, workload) = if vp {
            (CoreConfig::eole_6_64(), "hmmer")
        } else {
            (CoreConfig::baseline_6_64(), "gzip")
        };
        let (stitched, serial) = stitched_and_serial(runner, &config, workload, policy);
        prop_assert_eq!(stitched.committed, serial.committed);
        prop_assert_eq!(stitched.committed, measure);
        prop_assert_eq!(stitched.squashed, serial.squashed);
    }
}
