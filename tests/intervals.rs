//! Interval-parallel simulation: stitched-vs-serial contracts.
//!
//! A run split into K intervals (`Runner::try_run_intervals`) must
//! reproduce the serial run's *architectural* record exactly — committed
//! and squashed µ-op counts — because every interval reconstructs
//! predictor state by functionally replaying its prefix
//! (`Simulator::functional_warm`) and then warms timing-local state with
//! a detailed window of W µ-ops. Cycle counts are allowed to drift only
//! within the pinned budget (`INTERVAL_CYCLE_BUDGET`, 0.5%). The golden
//! table below pins both properties for every quick-suite preset; the
//! proptest extends the exactness contract to random (K, W, runner)
//! draws.

use eole_bench::{
    check_stitched_against_serial, Grid, IntervalPolicy, MemStore, ResultStore, RunKey, RunSpec,
    Runner, Session, INTERVAL_CYCLE_BUDGET,
};
use eole_core::config::CoreConfig;
use eole_core::stats::SimStats;
use eole_workloads::workload_by_name;
use proptest::prelude::*;
use std::sync::Arc;

/// The `sim-throughput` quick-suite axes: the paper's reference configs
/// over an INT/FP/memory-bound workload spread.
fn suite_configs() -> Vec<CoreConfig> {
    vec![
        CoreConfig::baseline_6_64(),
        CoreConfig::baseline_vp_6_64(),
        CoreConfig::eole_6_64(),
        CoreConfig::eole_4_64_ports(4, 4),
    ]
}

const SUITE_WORKLOADS: [&str; 5] = ["gzip", "h264", "mcf", "namd", "hmmer"];

fn stitched_and_serial(
    runner: Runner,
    config: &CoreConfig,
    workload: &str,
    policy: IntervalPolicy,
) -> (SimStats, SimStats) {
    let w = workload_by_name(workload).expect("suite workload");
    let trace = runner.try_prepare(&w).expect("trace");
    let stitched = runner.try_run_intervals(&trace, config.clone(), policy).expect("stitched");
    let serial = runner.try_run_serial_exact(&trace, config.clone()).expect("serial");
    (stitched, serial)
}

/// The golden stitched-vs-serial table: every quick-suite preset, split
/// k=2 and k=8, must keep committed and squashed counts exact and cycle
/// error inside the pinned budget.
#[test]
fn quick_suite_stitched_matches_serial_within_budget() {
    let runner = Runner::quick();
    for workload in SUITE_WORKLOADS {
        for config in &suite_configs() {
            for k in [2u32, 8] {
                let policy = IntervalPolicy::of(k, &runner);
                let (stitched, serial) = stitched_and_serial(runner, config, workload, policy);
                let label = format!("{}/{workload} k={k}", config.name);
                assert_eq!(stitched.committed, serial.committed, "{label}: committed");
                assert_eq!(stitched.committed, runner.measure, "{label}: covers the window");
                assert_eq!(stitched.squashed, serial.squashed, "{label}: squashed");
                let err = (stitched.cycles as f64 - serial.cycles as f64).abs()
                    / serial.cycles as f64;
                assert!(
                    err <= INTERVAL_CYCLE_BUDGET,
                    "{label}: cycle error {:.4}% exceeds the {:.1}% budget ({} vs {})",
                    err * 100.0,
                    INTERVAL_CYCLE_BUDGET * 100.0,
                    stitched.cycles,
                    serial.cycles,
                );
                // The paranoid-mode checker asserts the same contract;
                // exercising it here keeps it honest (it must not panic
                // on an in-budget pair).
                check_stitched_against_serial(&label, policy, &stitched, &serial);
            }
        }
    }
}

/// k=1 through the interval path is the exact-boundary serial run,
/// bit for bit — the degenerate stitch is a pure pass-through.
#[test]
fn single_interval_is_bit_identical_to_serial_exact() {
    let runner = Runner::quick();
    let w = workload_by_name("hmmer").unwrap();
    let trace = runner.try_prepare(&w).unwrap();
    let config = CoreConfig::eole_6_64();
    let policy = IntervalPolicy { k: 1, warmup: runner.warmup };
    let stitched = runner.try_run_intervals(&trace, config.clone(), policy).unwrap();
    let serial = runner.try_run_serial_exact(&trace, config).unwrap();
    assert_eq!(stitched.cycles, serial.cycles);
    assert_eq!(stitched.committed, serial.committed);
    assert_eq!(stitched.squashed, serial.squashed);
    assert_eq!(stitched.fetched, serial.fetched);
    assert_eq!(stitched.vp_used, serial.vp_used);
    assert_eq!(stitched.vp_squashes, serial.vp_squashes);
    assert_eq!(stitched.branch_mispredicts, serial.branch_mispredicts);
}

/// Interval-tagged run keys never collide with serial keys: the tag
/// participates in the digest, the file stem, and the payload.
#[test]
fn interval_keys_are_distinct_from_serial_keys() {
    let runner = Runner::quick();
    let spec = RunSpec {
        config: CoreConfig::eole_6_64(),
        workload: workload_by_name("gzip").unwrap(),
        runner,
        seed: 0,
    };
    let serial = RunKey::of(&spec);
    let tagged = RunKey::of_intervals(&spec, IntervalPolicy { k: 4, warmup: 1_000 });
    assert_eq!(serial.intervals, 0);
    assert_eq!(tagged.intervals, 4);
    assert_ne!(serial.digest64(), tagged.digest64(), "tag must change the digest");
    assert!(!serial.file_stem().contains("_i"), "serial stems carry no tag");
    assert!(tagged.file_stem().contains("_i4-1000"), "{}", tagged.file_stem());
    // Different k or W are different digests too (different approximations).
    let other = RunKey::of_intervals(&spec, IntervalPolicy { k: 8, warmup: 1_000 });
    assert_ne!(tagged.digest64(), other.digest64());

    // Store round-trip: a result saved under the tagged key is invisible
    // to the serial key and vice versa.
    let store = MemStore::new();
    let stats = SimStats { cycles: 7, committed: 42, ..SimStats::default() };
    store.save(&tagged, &stats).unwrap();
    assert!(store.load(&serial).is_none(), "serial lookup must miss the tagged result");
    let back = store.load(&tagged).expect("tagged lookup hits");
    assert_eq!(back.cycles, 7);
    assert_eq!(back.committed, 42);
}

/// The executor's interval path: grid results equal the library-level
/// stitch, results keep grid order, and a warm store serves the repeat
/// grid with zero simulations — under the interval-tagged keys.
#[test]
fn executor_interval_path_matches_library_stitch_and_caches() {
    let runner = Runner::quick();
    let policy = IntervalPolicy::of(4, &runner);
    let grid = Grid::new()
        .runner(runner)
        .configs([CoreConfig::baseline_6_64(), CoreConfig::eole_6_64()])
        .workload_names(&["gzip", "namd"]);
    let store: Arc<dyn ResultStore> = Arc::new(MemStore::new());
    let session = Session::builder()
        .runner(runner)
        .threads(3)
        .intervals(4)
        .store(Arc::clone(&store))
        .build()
        .unwrap();
    assert_eq!(session.intervals(), Some(policy));
    let results = session.run(&grid);
    assert_eq!(results.len(), 4);
    assert_eq!(session.executor().simulated(), 4);
    for (r, spec) in results.iter().zip(grid.specs()) {
        assert_eq!(r.spec.label(), spec.label(), "stitched results keep grid order");
        let got = r.stats().expect("stitched run succeeds");
        let trace = runner.try_prepare(&spec.workload).unwrap();
        let want = runner.try_run_intervals(&trace, spec.effective_config(), policy).unwrap();
        assert_eq!(got.cycles, want.cycles, "{}", spec.label());
        assert_eq!(got.committed, want.committed);
        assert_eq!(got.squashed, want.squashed);
    }
    // Warm repeat: all four cells come from the store under tagged keys.
    let warm = Session::builder()
        .runner(runner)
        .threads(2)
        .intervals(4)
        .store(Arc::clone(&store))
        .build()
        .unwrap();
    let again = warm.run(&grid);
    assert_eq!(warm.executor().simulated(), 0, "warm store serves every stitched cell");
    assert_eq!(warm.executor().store_hits(), 4);
    for (a, b) in results.iter().zip(&again) {
        assert_eq!(a.stats().unwrap().cycles, b.stats().unwrap().cycles);
    }
    // A serial session over the same grid must NOT see the stitched
    // results (tagged keys are invisible to serial lookups).
    let serial = Session::builder()
        .runner(runner)
        .threads(2)
        .store(Arc::clone(&store))
        .build()
        .unwrap();
    serial.run(&grid);
    assert_eq!(serial.executor().store_hits(), 0, "serial keys must miss stitched results");
    assert_eq!(serial.executor().simulated(), 4);
}

/// The session JSON header advertises the interval policy (additive
/// field; serial sessions emit the unchanged v1 payload).
#[test]
fn session_json_header_carries_the_interval_tag() {
    let with = Session::builder()
        .runner(Runner { warmup: 11, measure: 22 })
        .intervals(3)
        .interval_warmup(Some(7))
        .build()
        .unwrap();
    let payload = with.render(&[], eole_bench::Format::Json);
    assert!(payload.contains("\"intervals\":{\"k\":3,\"warmup\":7}"), "{payload}");
    let without = Session::builder().runner(Runner { warmup: 11, measure: 22 }).build().unwrap();
    let payload = without.render(&[], eole_bench::Format::Json);
    assert!(!payload.contains("intervals"), "serial payloads must be byte-stable: {payload}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The architectural-exactness contract under random (K, W, runner):
    /// stitched committed and squashed counts equal the exact-boundary
    /// serial run's, for a VP-heavy config on the suite's worst squasher
    /// (hmmer) and a VP-less baseline on gzip.
    #[test]
    fn stitched_counts_equal_serial_for_random_k_w_and_runner(
        k in 1u32..9,
        warmup_window in 500u64..4_000,
        warmup in 1_000u64..4_000,
        measure in 2_000u64..10_000,
        vp in any::<bool>(),
    ) {
        let runner = Runner { warmup, measure };
        let policy = IntervalPolicy { k, warmup: warmup_window };
        let (config, workload) = if vp {
            (CoreConfig::eole_6_64(), "hmmer")
        } else {
            (CoreConfig::baseline_6_64(), "gzip")
        };
        let (stitched, serial) = stitched_and_serial(runner, &config, workload, policy);
        prop_assert_eq!(stitched.committed, serial.committed);
        prop_assert_eq!(stitched.committed, measure);
        prop_assert_eq!(stitched.squashed, serial.squashed);
    }
}
