//! Cross-crate integration: every workload runs to completion on the main
//! configurations, deterministically, with sane statistics.

use eole::prelude::*;

fn run(trace: &PreparedTrace, config: CoreConfig) -> SimStats {
    let mut sim = Simulator::new(trace, config).expect("valid config");
    sim.run(u64::MAX).expect("no deadlock");
    assert!(sim.finished());
    assert_eq!(sim.committed_total(), trace.len() as u64, "every µ-op commits exactly once");
    sim.stats()
}

#[test]
fn all_workloads_complete_on_baseline_vp() {
    for w in all_workloads() {
        let trace = PreparedTrace::new(w.trace(12_000).expect("kernel runs"));
        let s = run(&trace, CoreConfig::baseline_vp_6_64());
        assert!(s.ipc() > 0.02, "{}: ipc {:.3}", w.name, s.ipc());
        assert!(s.ipc() < 8.0, "{}: ipc {:.3} exceeds machine width", w.name, s.ipc());
    }
}

#[test]
fn all_workloads_complete_on_eole_with_banked_ports() {
    for w in all_workloads() {
        let trace = PreparedTrace::new(w.trace(10_000).expect("kernel runs"));
        let s = run(&trace, CoreConfig::eole_4_64_ports(4, 4));
        assert!(s.ipc() > 0.02, "{}: ipc {:.3}", w.name, s.ipc());
    }
}

#[test]
fn simulation_is_reproducible_end_to_end() {
    for name in ["gzip", "mcf", "namd", "gobmk"] {
        let w = workload_by_name(name).unwrap();
        let t1 = PreparedTrace::new(w.trace(8_000).unwrap());
        let t2 = PreparedTrace::new(w.trace(8_000).unwrap());
        let a = run(&t1, CoreConfig::eole_4_64());
        let b = run(&t2, CoreConfig::eole_4_64());
        assert_eq!(a.cycles, b.cycles, "{name}: cycle counts differ");
        assert_eq!(a.vp_used, b.vp_used, "{name}");
        assert_eq!(a.squashed, b.squashed, "{name}");
    }
}

#[test]
fn used_value_predictions_are_nearly_always_correct() {
    // The FPC design contract (§4.2): used predictions must be reliable
    // enough that squash recovery is affordable.
    for name in ["wupwise", "bzip2", "art", "namd"] {
        let w = workload_by_name(name).unwrap();
        let trace = PreparedTrace::new(w.trace(60_000).unwrap());
        let s = run(&trace, CoreConfig::baseline_vp_6_64());
        if s.vp_used > 500 {
            assert!(
                s.vp_accuracy() > 0.99,
                "{name}: used-prediction accuracy {:.4}",
                s.vp_accuracy()
            );
        }
    }
}

#[test]
fn mcf_is_memory_bound_and_slow() {
    let w = workload_by_name("mcf").unwrap();
    let trace = PreparedTrace::new(w.trace(12_000).unwrap());
    let s = run(&trace, CoreConfig::baseline_6_64());
    assert!(s.ipc() < 0.5, "mcf must crawl: ipc {:.3}", s.ipc());
    assert!(s.mem.dram.accesses > 500, "mcf must hammer DRAM");
}

#[test]
fn hmmer_has_high_ipc_and_low_vp_coverage() {
    let w = workload_by_name("hmmer").unwrap();
    let trace = PreparedTrace::new(w.trace(40_000).unwrap());
    let s = run(&trace, CoreConfig::baseline_vp_6_64());
    let all: Vec<f64> = all_workloads()
        .iter()
        .take(4)
        .map(|w2| {
            let t = PreparedTrace::new(w2.trace(12_000).unwrap());
            run(&t, CoreConfig::baseline_vp_6_64()).ipc()
        })
        .collect();
    let _ = all;
    assert!(s.ipc() > 1.5, "hmmer is the suite's IPC champion: {:.3}", s.ipc());
    assert!(s.vp_coverage() < 0.45, "hmmer coverage {:.3} should be low", s.vp_coverage());
}
